/**
 * @file
 * Tests for the randomized runner: soundness against the exhaustive
 * explorer (it can only observe reachable outcomes), determinism by
 * seed, and the stressor effect on relaxed-outcome frequency.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace lts::sim
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

LitmusTest
sb()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.read(t1, "x");
    return b.build("SB");
}

LitmusTest
mp()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.write(t0, "y");
    int t1 = b.newThread();
    b.read(t1, "y");
    b.read(t1, "x");
    return b.build("MP");
}

TEST(RunnerTest, ObservedOutcomesAreReachable)
{
    for (const LitmusTest &t : {sb(), mp()}) {
        auto exhaustive = tsoOutcomes(t);
        RunnerOptions opt;
        opt.schedules = 2000;
        opt.seed = 42;
        RunStats stats = runRandom(t, opt);
        EXPECT_EQ(stats.runs, 2000u);
        uint64_t total = 0;
        for (const auto &[sig, count] : stats.histogram) {
            EXPECT_TRUE(exhaustive.count(sig)) << t.name;
            total += count;
        }
        EXPECT_EQ(total, stats.runs);
    }
}

TEST(RunnerTest, EnoughSchedulesCoverEverything)
{
    // Small tests: 5000 random schedules should reach the full set.
    LitmusTest t = sb();
    RunnerOptions opt;
    opt.schedules = 5000;
    opt.seed = 7;
    RunStats stats = runRandom(t, opt);
    EXPECT_EQ(stats.distinct(), tsoOutcomes(t).size());
}

TEST(RunnerTest, DeterministicBySeed)
{
    RunnerOptions opt;
    opt.schedules = 500;
    opt.seed = 99;
    RunStats a = runRandom(sb(), opt);
    RunStats b = runRandom(sb(), opt);
    EXPECT_EQ(a.histogram, b.histogram);
    opt.seed = 100;
    RunStats c = runRandom(sb(), opt);
    EXPECT_NE(a.histogram, c.histogram); // overwhelmingly likely
}

TEST(RunnerTest, ScMachineNeverShowsRelaxedOutcomes)
{
    LitmusTest t = sb();
    RunnerOptions opt;
    opt.schedules = 3000;
    opt.tso = false;
    RunStats stats = runRandom(t, opt);
    auto sc_set = scOutcomes(t);
    for (const auto &[sig, count] : stats.histogram)
        EXPECT_TRUE(sc_set.count(sig));
}

TEST(RunnerTest, StressIncreasesRelaxedOutcomeFrequency)
{
    // SB's (0,0): both reads must execute before either buffer drains.
    // The stressed scheduler starves drains, so the relaxed outcome
    // becomes much more common — the stressor effect of Section 2.1.
    LitmusTest t = sb();
    Signature relaxed = {-1, 0, -1, 0, 1, 3}; // r(y)=0, r(x)=0, finals
    RunnerOptions calm;
    calm.schedules = 4000;
    calm.seed = 11;
    calm.stress = 0;
    RunnerOptions stressed = calm;
    stressed.stress = 95;

    uint64_t calm_hits = runRandom(t, calm).count(relaxed);
    uint64_t stressed_hits = runRandom(t, stressed).count(relaxed);
    EXPECT_GT(stressed_hits, calm_hits * 2)
        << "calm=" << calm_hits << " stressed=" << stressed_hits;
}

TEST(RunnerTest, RmwStallsStillTerminate)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r = b.read(t0, "y");
    int w = b.write(t0, "y");
    b.pairRmw(r, w);
    int t1 = b.newThread();
    b.write(t1, "y");
    LitmusTest t = b.build("st+rmw");
    RunnerOptions opt;
    opt.schedules = 500;
    RunStats stats = runRandom(t, opt);
    EXPECT_EQ(stats.runs, 500u);
    for (const auto &[sig, count] : stats.histogram)
        EXPECT_TRUE(tsoOutcomes(t).count(sig));
}

TEST(RunnerTest, DependenciesRejected)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "y");
    b.dataDepend(r, w);
    LitmusTest t = b.build("dep");
    EXPECT_THROW(runRandom(t, RunnerOptions{}), std::invalid_argument);
}

} // namespace
} // namespace lts::sim
