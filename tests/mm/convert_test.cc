/**
 * @file
 * Round-trip tests for mm/convert.cc over every registered model — the
 * same registry ltslint --all runs against.
 *
 * For each model, enumerate well-formed instances at a small bounded
 * size, read each back as a litmus test (fromInstance), embed the test
 * again (toInstance), and check that the rebuilt instance still
 * satisfies every well-formedness fact and agrees with the original on
 * the relations a litmus test represents exactly. A conversion bug that
 * drops or misplaces an annotation, dependency, or communication edge
 * fails here with the offending model, fact, and relation named.
 */

#include <gtest/gtest.h>

#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "rel/encoder.hh"
#include "rel/eval.hh"

namespace lts::mm
{
namespace
{

class ConvertRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ConvertRoundTrip, ReValidatesEveryEnumeratedInstance)
{
    const size_t n = 3;
    const int max_instances = 24;
    auto model = makeModel(GetParam());
    const rel::Vocabulary &vocab = model->vocab();

    rel::RelSolver solver(vocab, n);
    solver.addBaseFact(model->wellFormed(n));

    int checked = 0;
    while (checked < max_instances &&
           solver.solve() == sat::SolveResult::Sat) {
        const rel::Instance &inst = solver.instance();
        litmus::LitmusTest test = fromInstance(*model, inst);

        // The sc order is existential per execution, not part of the
        // litmus IR; recover it from the original instance.
        std::vector<std::pair<int, int>> sc;
        if (model->features().scOrder) {
            const auto &m = inst.matrix(vocab.find(kScOrd).id);
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    if (m.test(i, j))
                        sc.emplace_back(static_cast<int>(i),
                                        static_cast<int>(j));
                }
            }
        }
        rel::Instance round = toInstance(*model, test, test.forbidden, sc);

        for (const auto &fact : model->wellFormedFacts(n)) {
            EXPECT_TRUE(rel::evalFormula(fact.formula, round))
                << GetParam() << " instance " << checked
                << " violates " << fact.label << " after round-trip";
        }
        for (size_t id = 0; id < vocab.size(); id++) {
            const auto &d = vocab.decl(static_cast<int>(id));
            if (d.arity == 1) {
                EXPECT_EQ(inst.set(d.id), round.set(d.id))
                    << GetParam() << " instance " << checked
                    << " changed set " << d.name << " after round-trip";
            } else {
                EXPECT_EQ(inst.matrix(d.id), round.matrix(d.id))
                    << GetParam() << " instance " << checked
                    << " changed relation " << d.name
                    << " after round-trip";
            }
        }

        checked++;
        solver.blockModel();
    }
    EXPECT_GT(checked, 0) << GetParam()
                          << " admits no instance at size " << n;
}

INSTANTIATE_TEST_SUITE_P(
    Models, ConvertRoundTrip, ::testing::ValuesIn(allModelNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace lts::mm
