/**
 * @file
 * Tests for the scoped SCC model ("sscc") and the DS relaxation — the
 * Section 3.2 scope-demotion machinery on an OpenCL/HSA-style model.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "rel/eval.hh"
#include "synth/minimality.hh"
#include "synth/sound.hh"

namespace lts::mm
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::Scope;
using litmus::TestBuilder;

/**
 * Scoped MP: producer and consumer threads either share a workgroup or
 * not, with the release/acquire pair at the given scope.
 */
LitmusTest
scopedMp(bool same_wg, Scope rel_scope, Scope acq_scope)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    b.setScope(wf, rel_scope);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    b.setScope(rf, acq_scope);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    if (same_wg) {
        b.setWorkgroup(t0, 0);
        b.setWorkgroup(t1, 0);
    }
    return b.build("MP-scoped");
}

TEST(ScopedIrTest, WorkgroupsInBuilderAndCanonicalForm)
{
    LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
    EXPECT_TRUE(t.hasWorkgroups());
    EXPECT_EQ(t.workgroupOf(0), t.workgroupOf(1));
    EXPECT_EQ(t.validate(), "");

    LitmusTest u = scopedMp(false, Scope::WorkGroup, Scope::WorkGroup);
    EXPECT_FALSE(u.hasWorkgroups());
    EXPECT_NE(litmus::staticSerialize(t), litmus::staticSerialize(u));

    // Scope annotations are part of test identity.
    LitmusTest v = scopedMp(true, Scope::System, Scope::WorkGroup);
    EXPECT_NE(litmus::canonicalHash(t, litmus::CanonMode::Exact),
              litmus::canonicalHash(v, litmus::CanonMode::Exact));
}

TEST(ScopedIrTest, SameWgMatrix)
{
    LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
    BitMatrix swg = t.sameWgMatrix();
    EXPECT_TRUE(swg.test(0, 2)); // cross-thread, same workgroup
    LitmusTest u = scopedMp(false, Scope::WorkGroup, Scope::WorkGroup);
    EXPECT_FALSE(u.sameWgMatrix().test(0, 2));
    EXPECT_TRUE(u.sameWgMatrix().test(0, 1)); // same thread
}

TEST(ScopedIrTest, CanonicalizationMergesWorkgroupSymmetry)
{
    // Two tests identical up to thread order and workgroup labels.
    TestBuilder b1;
    int a1 = b1.newThread();
    int b1t = b1.newThread();
    b1.write(a1, "x");
    b1.read(b1t, "x");
    b1.setWorkgroup(a1, 7);
    b1.setWorkgroup(b1t, 7);
    LitmusTest t1 = b1.build("g1");

    TestBuilder b2;
    int a2 = b2.newThread();
    int b2t = b2.newThread();
    b2.read(a2, "x");
    b2.write(b2t, "x");
    b2.setWorkgroup(a2, 3);
    b2.setWorkgroup(b2t, 3);
    LitmusTest t2 = b2.build("g2");

    EXPECT_EQ(litmus::canonicalHash(t1, litmus::CanonMode::Exact),
              litmus::canonicalHash(t2, litmus::CanonMode::Exact));

}

TEST(ScopedModelTest, ConvertRoundTripsScopesAndWorkgroups)
{
    auto sscc = makeModel("sscc");
    LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::System);
    rel::Instance inst = toInstance(*sscc, t, t.forbidden);
    EXPECT_TRUE(rel::evalFormula(sscc->wellFormed(t.size()), inst));
    LitmusTest back = fromInstance(*sscc, inst);
    EXPECT_EQ(litmus::fullSerialize(back), litmus::fullSerialize(t));
    EXPECT_EQ(back.events[1].scope, Scope::WorkGroup);
    EXPECT_EQ(back.events[2].scope, Scope::System);
    EXPECT_TRUE(back.hasWorkgroups());
}

TEST(ScopedModelTest, UnscopedModelsRejectScopedTests)
{
    auto scc = makeModel("scc");
    LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
    EXPECT_THROW(toInstance(*scc, t, t.forbidden), std::invalid_argument);
}

TEST(ScopedModelTest, WellFormedRequiresScopeOnSyncOps)
{
    auto sscc = makeModel("sscc");
    LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
    rel::Instance inst = toInstance(*sscc, t, t.forbidden);
    // Strip the release's scope membership: no longer well-formed.
    inst.set(sscc->vocab().find(kScopeWg).id).reset(1);
    EXPECT_FALSE(rel::evalFormula(sscc->wellFormed(t.size()), inst));
}

TEST(ScopedModelTest, WorkgroupScopeSynchronizesOnlyWithinGroup)
{
    auto sscc = makeModel("sscc");
    // Same workgroup + wg-scoped release/acquire: MP outcome forbidden.
    {
        LitmusTest t = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
        rel::Instance inst = toInstance(*sscc, t, t.forbidden);
        EXPECT_FALSE(rel::evalFormula(
            sscc->allAxioms(sscc->base(), t.size()), inst));
    }
    // Different workgroups + wg-scoped pair: synchronization is too
    // narrow, the outcome is ALLOWED.
    {
        LitmusTest t = scopedMp(false, Scope::WorkGroup, Scope::WorkGroup);
        rel::Instance inst = toInstance(*sscc, t, t.forbidden);
        EXPECT_TRUE(rel::evalFormula(
            sscc->allAxioms(sscc->base(), t.size()), inst));
    }
    // Different workgroups + system scope on both: forbidden again.
    {
        LitmusTest t = scopedMp(false, Scope::System, Scope::System);
        rel::Instance inst = toInstance(*sscc, t, t.forbidden);
        EXPECT_FALSE(rel::evalFormula(
            sscc->allAxioms(sscc->base(), t.size()), inst));
    }
    // Mixed: one narrow end breaks cross-workgroup synchronization.
    {
        LitmusTest t = scopedMp(false, Scope::System, Scope::WorkGroup);
        rel::Instance inst = toInstance(*sscc, t, t.forbidden);
        EXPECT_TRUE(rel::evalFormula(
            sscc->allAxioms(sscc->base(), t.size()), inst));
    }
}

TEST(ScopedModelTest, DsMinimalityCrossWorkgroupMp)
{
    auto sscc = makeModel("sscc");
    // Cross-workgroup MP with system scopes: DS on either end makes the
    // outcome observable, so the test is minimal (DS is what enforces
    // "no wider scope than needed").
    LitmusTest minimal = scopedMp(false, Scope::System, Scope::System);
    auto axioms = synth::minimalAxioms(*sscc, minimal);
    EXPECT_TRUE(std::find(axioms.begin(), axioms.end(), "causality") !=
                axioms.end());

    // Same-workgroup MP with *system* scopes is over-synchronized: DS
    // demotes either scope to workgroup and the outcome stays forbidden.
    LitmusTest wide = scopedMp(true, Scope::System, Scope::System);
    EXPECT_TRUE(synth::minimalAxioms(*sscc, wide).empty());

    // Same-workgroup MP with workgroup scopes is the minimal variant.
    LitmusTest tight = scopedMp(true, Scope::WorkGroup, Scope::WorkGroup);
    auto tight_axioms = synth::minimalAxioms(*sscc, tight);
    EXPECT_TRUE(std::find(tight_axioms.begin(), tight_axioms.end(),
                          "causality") != tight_axioms.end());
}

TEST(ScopedModelTest, SoundEngineAgreesOnDs)
{
    auto sscc = makeModel("sscc");
    LitmusTest minimal = scopedMp(false, Scope::System, Scope::System);
    auto sound = synth::soundMinimalAxioms(*sscc, minimal);
    EXPECT_TRUE(std::find(sound.begin(), sound.end(), "causality") !=
                sound.end());

    LitmusTest wide = scopedMp(true, Scope::System, Scope::System);
    EXPECT_TRUE(synth::soundMinimalAxioms(*sscc, wide).empty());

    // applyRelaxations produces DS applications exactly for the
    // system-scoped sync ops.
    int ds = 0;
    for (const auto &r : synth::applyRelaxations(*sscc, minimal)) {
        if (r.relaxation == "DS(sys->wg)") {
            ds++;
            EXPECT_EQ(r.test.events[r.event].scope, Scope::WorkGroup);
        }
    }
    EXPECT_EQ(ds, 2);
}

} // namespace
} // namespace lts::mm
