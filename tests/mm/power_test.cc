/**
 * @file
 * Power model tests: the unrolled ppo fixpoint is validated against an
 * exact concrete fixpoint computation on random executions, and the
 * fence/prop machinery is exercised on the classic Power shapes.
 */

#include <gtest/gtest.h>

#include <random>

#include "litmus/test.hh"
#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "mm/models.hh"
#include "rel/eval.hh"

namespace lts::mm
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

/** Exact ii/ic/ci/cc least fixpoint by bitset iteration. */
BitMatrix
exactPpo(const Model &model, const rel::Instance &inst)
{
    const Env &env = model.base();
    size_t n = inst.universe();
    rel::Evaluator ev(inst);

    BitMatrix dp = ev.matrix(env.get(kAddr) + env.get(kData));
    BitMatrix rdw = ev.matrix(
        mkIntersect(poLoc(env), mkJoin(fre(env), rfe(env))));
    BitMatrix detour = ev.matrix(
        mkIntersect(poLoc(env), mkJoin(coe(env), rfe(env))));
    BitMatrix rfi_m = ev.matrix(rfi(env));
    BitMatrix po_loc = ev.matrix(poLoc(env));
    BitMatrix ctrl = ev.matrix(env.get(kCtrl));
    BitMatrix addr_po =
        ev.matrix(mkJoin(env.get(kAddr), env.get(kPo)));

    BitMatrix ii0 = dp;
    ii0 |= rdw;
    ii0 |= rfi_m;
    BitMatrix ic0(n);
    BitMatrix ci0 = detour;
    BitMatrix cc0 = dp;
    cc0 |= po_loc;
    cc0 |= ctrl;
    cc0 |= addr_po;

    BitMatrix ii = ii0, ic = ic0, ci = ci0, cc = cc0;
    for (;;) {
        BitMatrix ii2 = ii0, ic2 = ic0, ci2 = ci0, cc2 = cc0;
        ii2 |= ci;
        ii2 |= ic.compose(ci);
        ii2 |= ii.compose(ii);
        ic2 |= ii;
        ic2 |= cc;
        ic2 |= ic.compose(cc);
        ic2 |= ii.compose(ic);
        ci2 |= ci.compose(ii);
        ci2 |= cc.compose(ci);
        cc2 |= ci;
        cc2 |= ci.compose(ic);
        cc2 |= cc.compose(cc);
        if (ii2 == ii && ic2 == ic && ci2 == ci && cc2 == cc)
            break;
        ii = ii2;
        ic = ic2;
        ci = ci2;
        cc = cc2;
    }

    BitMatrix r_mat(n), w_mat(n);
    Bitset r_set = ev.set(env.get(kR));
    Bitset w_set = ev.set(env.get(kW));
    BitMatrix out(n);
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            if (r_set.test(i) && r_set.test(j) && ii.test(i, j))
                out.set(i, j);
            if (r_set.test(i) && w_set.test(j) && ic.test(i, j))
                out.set(i, j);
        }
    }
    (void)r_mat;
    (void)w_mat;
    return out;
}

class PowerPpoPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PowerPpoPropertyTest, UnrolledPpoMatchesExactFixpoint)
{
    auto power = makePower();
    std::mt19937 rng(GetParam());
    size_t n = 4 + rng() % 3; // 4..6 events

    for (int trial = 0; trial < 40; trial++) {
        // Random instance over the Power vocabulary; only rough shape
        // constraints are needed since both sides see the same relations.
        rel::Instance inst(power->vocab(), n);
        auto &r = inst.set(power->vocab().find(kR).id);
        auto &w = inst.set(power->vocab().find(kW).id);
        for (size_t i = 0; i < n; i++) {
            if (rng() & 1)
                r.set(i);
            else
                w.set(i);
        }
        auto set_random = [&](const std::string &name, int density) {
            auto &m = inst.matrix(power->vocab().find(name).id);
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    if (i != j && static_cast<int>(rng() % 100) < density)
                        m.set(i, j);
                }
            }
        };
        // po: random order-respecting relation; sloc symmetric-ish.
        auto &po = inst.matrix(power->vocab().find(kPo).id);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = i + 1; j < n; j++) {
                if (rng() & 1)
                    po.set(i, j);
            }
        }
        auto &sloc = inst.matrix(power->vocab().find(kSloc).id);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = i; j < n; j++) {
                if (i == j || (rng() % 3) == 0) {
                    sloc.set(i, j);
                    sloc.set(j, i);
                }
            }
        }
        set_random(kRf, 15);
        set_random(kCo, 15);
        set_random(kAddr, 10);
        set_random(kData, 10);
        set_random(kCtrl, 10);

        BitMatrix want = exactPpo(*power, inst);
        BitMatrix got =
            rel::evalMatrix(powerPpo(power->base(), n), inst);
        ASSERT_EQ(got, want) << "seed " << GetParam() << " trial " << trial
                             << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerPpoPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(PowerSemanticsTest, MpNeedsCumulativeFence)
{
    auto power = makePower();
    // MP with data dependency on the consumer only: still allowed
    // (producer stores unordered).
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf_ev = b.read(t1, "y");
    int rd = b.read(t1, "x");
    b.addrDepend(rf_ev, rd);
    b.readsFrom(wf, rf_ev);
    b.readsInitial(rd);
    LitmusTest mp = b.build("MP+po+addr");

    rel::Instance inst = toInstance(*power, mp, mp.forbidden);
    EXPECT_TRUE(rel::evalFormula(
        power->allAxioms(power->base(), mp.size()), inst));
}

TEST(PowerSemanticsTest, LwsyncOrdersWriteWrite)
{
    auto power = makePower();
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::AcqRel); // lwsync
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf_ev = b.read(t1, "y");
    int rd = b.read(t1, "x");
    b.addrDepend(rf_ev, rd);
    b.readsFrom(wf, rf_ev);
    b.readsInitial(rd);
    LitmusTest mp = b.build("MP+lwsync+addr");

    rel::Instance inst = toInstance(*power, mp, mp.forbidden);
    EXPECT_FALSE(rel::evalFormula(
        power->allAxioms(power->base(), mp.size()), inst));
}

TEST(PowerSemanticsTest, LwsyncDoesNotOrderWriteRead)
{
    auto power = makePower();
    // SB with lwsyncs: outcome remains allowed (lwfence excludes W->R).
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::AcqRel);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::AcqRel);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB+lwsyncs");
    rel::Instance inst = toInstance(*power, sb, sb.forbidden);
    EXPECT_TRUE(rel::evalFormula(
        power->allAxioms(power->base(), sb.size()), inst));
}

TEST(PowerSemanticsTest, SyncOrdersWriteRead)
{
    auto power = makePower();
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::SeqCst);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB+syncs");
    rel::Instance inst = toInstance(*power, sb, sb.forbidden);
    EXPECT_FALSE(rel::evalFormula(
        power->allAxioms(power->base(), sb.size()), inst));
}

TEST(ArmSemanticsTest, Armv7MatchesPowerOnDmbShapes)
{
    auto arm = makeArmv7();
    // dmb-fenced SB is forbidden, exactly like sync.
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::SeqCst); // dmb
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB+dmbs");
    rel::Instance inst = toInstance(*arm, sb, sb.forbidden);
    EXPECT_FALSE(
        rel::evalFormula(arm->allAxioms(arm->base(), sb.size()), inst));
}

TEST(ArmSemanticsTest, Armv7HasNoLwsync)
{
    auto arm = makeArmv7();
    EXPECT_FALSE(arm->features().acqRelFence);
    // No DF relaxation for ARMv7 (dmb has nothing to demote into).
    for (const auto &r : arm->relaxations())
        EXPECT_NE(r.tag, RTag::DF);
    // An AcqRel-annotated fence cannot even be expressed.
    TestBuilder b;
    int t0 = b.newThread();
    b.fence(t0, MemOrder::AcqRel);
    b.write(t0, "x");
    LitmusTest t = b.build("lwsync-on-arm");
    EXPECT_THROW(toInstance(*arm, t, litmus::Outcome(t.size())),
                 std::invalid_argument);
}

} // namespace
} // namespace lts::mm
