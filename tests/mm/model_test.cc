/**
 * @file
 * Tests for the memory-model framework: vocabulary construction,
 * well-formedness, conversions, and the legality of the textbook
 * outcomes of the named litmus tests under each model.
 */

#include <gtest/gtest.h>

#include "litmus/test.hh"
#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "rel/eval.hh"

namespace lts::mm
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::Outcome;
using litmus::TestBuilder;

TEST(RegistryTest, AllModelsConstruct)
{
    for (const auto &name : modelNames()) {
        auto model = makeModel(name);
        EXPECT_EQ(model->name(), name);
        EXPECT_FALSE(model->axioms().empty()) << name;
        EXPECT_FALSE(model->relaxations().empty()) << name;
        EXPECT_GE(model->vocab().size(), 6u) << name;
    }
}

TEST(RegistryTest, UnknownModelThrows)
{
    EXPECT_THROW(makeModel("itanium"), std::out_of_range);
}

TEST(RegistryTest, AxiomLookup)
{
    auto tso = makeModel("tso");
    EXPECT_EQ(tso->axiom("causality").name, "causality");
    EXPECT_THROW(tso->axiom("nope"), std::out_of_range);
}

TEST(RegistryTest, ApplicabilityTableMatchesPaper)
{
    auto table = applicabilityTable();
    ASSERT_EQ(table.size(), 10u); // the ten models of Table 2
    // Spot checks against Table 2.
    EXPECT_EQ(table[0].model.substr(0, 2), "SC");
    EXPECT_EQ(table[0].dmo, Applicability::No);
    EXPECT_EQ(table[2].model.substr(0, 5), "Power");
    EXPECT_EQ(table[2].rd, Applicability::Yes);
    EXPECT_EQ(table[6].model.substr(0, 3), "SCC");
    EXPECT_EQ(table[6].rd, Applicability::ThinAirOnly);
    EXPECT_EQ(table[7].ds, Applicability::Yes);  // HSA has scopes
    EXPECT_EQ(table[9].ds, Applicability::Yes);  // OpenCL has scopes
    int synthesizable = 0;
    for (const auto &row : table) {
        if (row.synthesizable)
            synthesizable++;
        EXPECT_EQ(row.ri, Applicability::Yes) << row.model;
    }
    EXPECT_EQ(synthesizable, 6);
}

TEST(ModelTest, StaticAndDynamicVarsPartitionVocabulary)
{
    for (const auto &name : modelNames()) {
        auto model = makeModel(name);
        auto s = model->staticVarIds();
        auto d = model->dynamicVarIds();
        EXPECT_EQ(s.size() + d.size(), model->vocab().size()) << name;
        // rf and co are always dynamic.
        EXPECT_GE(d.size(), 2u) << name;
    }
}

/** Build MP with the Figure 1 annotations and its forbidden outcome. */
LitmusTest
mpRelAcq()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP+rel+acq");
}

TEST(ConvertTest, RoundTripsThroughInstance)
{
    auto scc = makeModel("scc");
    LitmusTest mp = mpRelAcq();
    rel::Instance inst = toInstance(*scc, mp, mp.forbidden);
    LitmusTest back = fromInstance(*scc, inst);
    EXPECT_EQ(back.validate(), "");
    EXPECT_EQ(back.size(), mp.size());
    EXPECT_EQ(back.numThreads, mp.numThreads);
    EXPECT_EQ(back.numLocs, mp.numLocs);
    for (size_t i = 0; i < mp.size(); i++) {
        EXPECT_EQ(back.events[i].type, mp.events[i].type);
        EXPECT_EQ(back.events[i].order, mp.events[i].order);
        EXPECT_EQ(back.events[i].loc, mp.events[i].loc);
        EXPECT_EQ(back.events[i].tid, mp.events[i].tid);
    }
    EXPECT_EQ(back.forbidden.rf, mp.forbidden.rf);
    EXPECT_EQ(back.forbidden.co, mp.forbidden.co);
}

TEST(ConvertTest, WellFormedAcceptsConvertedTests)
{
    auto scc = makeModel("scc");
    LitmusTest mp = mpRelAcq();
    rel::Instance inst = toInstance(*scc, mp, mp.forbidden);
    EXPECT_TRUE(
        rel::evalFormula(scc->wellFormed(mp.size()), inst));
}

TEST(ConvertTest, RejectsUnsupportedFeatures)
{
    auto tso = makeModel("tso");
    // Annotations are not part of TSO's vocabulary.
    EXPECT_THROW(toInstance(*tso, mpRelAcq(), mpRelAcq().forbidden),
                 std::invalid_argument);

    // Dependencies are not part of TSO.
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "y");
    b.dataDepend(r, w);
    LitmusTest t = b.build("deps");
    EXPECT_THROW(toInstance(*tso, t, Outcome(t.size())),
                 std::invalid_argument);

    // Fences do not exist under SC.
    auto sc = makeModel("sc");
    TestBuilder b2;
    int u0 = b2.newThread();
    b2.fence(u0, MemOrder::Plain);
    b2.write(u0, "x");
    LitmusTest t2 = b2.build("fence");
    EXPECT_THROW(toInstance(*sc, t2, Outcome(t2.size())),
                 std::invalid_argument);
}

TEST(ConvertTest, ConsumeIsRejectedWithGuidance)
{
    auto c11 = makeModel("c11");
    TestBuilder b;
    int t0 = b.newThread();
    b.read(t0, "x", MemOrder::Consume);
    LitmusTest t = b.build("consume");
    EXPECT_THROW(toInstance(*c11, t, Outcome(t.size())),
                 std::invalid_argument);
}

TEST(WellFormedTest, RejectsBrokenInstances)
{
    auto tso = makeModel("tso");
    LitmusTest mp = mpRelAcq();
    // Strip annotations so TSO accepts the shape.
    for (auto &e : mp.events)
        e.order = MemOrder::Plain;

    {
        // rf edge between different locations.
        rel::Instance inst = toInstance(*tso, mp, mp.forbidden);
        inst.matrix(tso->vocab().find(kRf).id).set(0, 2); // W[x] -> R[y]
        EXPECT_FALSE(rel::evalFormula(tso->wellFormed(mp.size()), inst));
    }
    {
        // Read with two rf sources.
        rel::Instance inst = toInstance(*tso, mp, mp.forbidden);
        inst.matrix(tso->vocab().find(kRf).id).set(0, 3);
        inst.matrix(tso->vocab().find(kRf).id).set(1, 3);
        EXPECT_FALSE(rel::evalFormula(tso->wellFormed(mp.size()), inst));
    }
    {
        // Missing co ordering between same-location writes.
        TestBuilder b;
        int t0 = b.newThread();
        b.write(t0, "x");
        int t1 = b.newThread();
        b.write(t1, "x");
        LitmusTest ww = b.build("ww");
        rel::Instance inst = toInstance(*tso, ww, Outcome(ww.size()));
        EXPECT_FALSE(rel::evalFormula(tso->wellFormed(ww.size()), inst));
        inst.matrix(tso->vocab().find(kCo).id).set(0, 1);
        EXPECT_TRUE(rel::evalFormula(tso->wellFormed(ww.size()), inst));
    }
}

TEST(WellFormedTest, ConvexityBreaksSymmetricThreadLayouts)
{
    // A hand-built instance with interleaved thread blocks (atom 0 and 2
    // in one thread, atom 1 in another) must be rejected.
    auto sc = makeModel("sc");
    rel::Instance inst(sc->vocab(), 3);
    inst.set(sc->vocab().find(kW).id).set(0);
    inst.set(sc->vocab().find(kW).id).set(1);
    inst.set(sc->vocab().find(kW).id).set(2);
    auto &po = inst.matrix(sc->vocab().find(kPo).id);
    po.set(0, 2); // same thread: 0 and 2, skipping 1
    auto &sloc = inst.matrix(sc->vocab().find(kSloc).id);
    for (int i = 0; i < 3; i++)
        sloc.set(i, i);
    // co must order same-location writes; give each its own location.
    EXPECT_FALSE(rel::evalFormula(sc->wellFormed(3), inst));
    // Making them contiguous (0,1 same thread) is accepted.
    po.set(0, 2, false);
    po.set(0, 1);
    EXPECT_TRUE(rel::evalFormula(sc->wellFormed(3), inst));
}

// --- Named-test legality per model (the paper's running examples) ---------

TEST(TsoSemanticsTest, TsoPermitsSbButScForbidsIt)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB");

    auto tso = makeModel("tso");
    auto sc = makeModel("sc");
    rel::Instance tso_inst = toInstance(*tso, sb, sb.forbidden);
    rel::Instance sc_inst = toInstance(*sc, sb, sb.forbidden);
    EXPECT_TRUE(rel::evalFormula(tso->allAxioms(tso->base(), sb.size()),
                                 tso_inst));
    EXPECT_FALSE(
        rel::evalFormula(sc->allAxioms(sc->base(), sb.size()), sc_inst));
}

TEST(SccSemanticsTest, Figure1OutcomeForbiddenWithAnnotations)
{
    auto scc = makeModel("scc");
    LitmusTest mp = mpRelAcq();
    rel::Instance inst = toInstance(*scc, mp, mp.forbidden);
    EXPECT_FALSE(
        rel::evalFormula(scc->allAxioms(scc->base(), mp.size()), inst));
}

TEST(SccSemanticsTest, PlainMpOutcomeAllowed)
{
    auto scc = makeModel("scc");
    LitmusTest mp = mpRelAcq();
    for (auto &e : mp.events)
        e.order = MemOrder::Plain;
    rel::Instance inst = toInstance(*scc, mp, mp.forbidden);
    EXPECT_TRUE(
        rel::evalFormula(scc->allAxioms(scc->base(), mp.size()), inst));
}

TEST(C11SemanticsTest, ReleaseAcquireForbidsMpOutcome)
{
    auto c11 = makeModel("c11");
    LitmusTest mp = mpRelAcq();
    rel::Instance inst = toInstance(*c11, mp, mp.forbidden);
    EXPECT_FALSE(
        rel::evalFormula(c11->allAxioms(c11->base(), mp.size()), inst));

    for (auto &e : mp.events)
        e.order = MemOrder::Plain;
    rel::Instance relaxed = toInstance(*c11, mp, mp.forbidden);
    EXPECT_TRUE(
        rel::evalFormula(c11->allAxioms(c11->base(), mp.size()), relaxed));
}

TEST(RelaxationTest, NamesAndTags)
{
    EXPECT_EQ(toString(RTag::RI), "RI");
    EXPECT_EQ(toString(RTag::DMO), "DMO");
    EXPECT_EQ(toString(RTag::DS), "DS");
    auto scc = makeModel("scc");
    bool has_dmo = false;
    for (const auto &r : scc->relaxations()) {
        if (r.tag == RTag::DMO)
            has_dmo = true;
    }
    EXPECT_TRUE(has_dmo);
}

TEST(RelaxationTest, RIPerturbationMasksEverything)
{
    auto tso = makeModel("tso");
    LitmusTest mp = mpRelAcq();
    for (auto &e : mp.events)
        e.order = MemOrder::Plain;
    rel::Instance inst = toInstance(*tso, mp, mp.forbidden);

    const Relaxation *ri = nullptr;
    for (const auto &r : tso->relaxations()) {
        if (r.tag == RTag::RI)
            ri = &r;
    }
    ASSERT_NE(ri, nullptr);
    // Remove event 1 (the flag write): rf to the flag read disappears.
    Env perturbed = ri->perturb(tso->base(), singleton(1, mp.size()),
                                mp.size());
    BitMatrix rf = rel::evalMatrix(perturbed.get(kRf), inst);
    EXPECT_EQ(rf.count(), 0u);
    Bitset w = rel::evalSet(perturbed.get(kW), inst);
    EXPECT_FALSE(w.test(1));
    EXPECT_TRUE(w.test(0));
    // po among the survivors is untouched.
    BitMatrix po = rel::evalMatrix(perturbed.get(kPo), inst);
    EXPECT_TRUE(po.test(2, 3));
    EXPECT_FALSE(po.test(0, 1));
}

TEST(RelaxationTest, CoMaskRepairsTransitiveChain)
{
    // Three same-location writes in co order 0 -> 1 -> 2 stored as a
    // non-transitive chain: masking out the middle write must keep
    // 0 -> 2 (Figure 8).
    auto tso = makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.write(t0, "x");
    int t1 = b.newThread();
    b.write(t1, "x");
    LitmusTest www = b.build("www");
    rel::Instance inst = toInstance(*tso, www, Outcome(www.size()));
    auto &co = inst.matrix(tso->vocab().find(kCo).id);
    co.set(0, 1);
    co.set(1, 2); // deliberately not transitively closed

    const Relaxation *ri = nullptr;
    for (const auto &r : tso->relaxations()) {
        if (r.tag == RTag::RI)
            ri = &r;
    }
    Env perturbed = ri->perturb(tso->base(), singleton(1, 3), 3);
    BitMatrix masked = rel::evalMatrix(perturbed.get(kCo), inst);
    EXPECT_TRUE(masked.test(0, 2));
    EXPECT_FALSE(masked.test(0, 1));
    EXPECT_FALSE(masked.test(1, 2));
}

TEST(RelaxationTest, DemoteMovesAnnotation)
{
    auto scc = makeModel("scc");
    LitmusTest mp = mpRelAcq();
    rel::Instance inst = toInstance(*scc, mp, mp.forbidden);

    const Relaxation *dmo = nullptr;
    for (const auto &r : scc->relaxations()) {
        if (r.name == "DMO(acq->rlx)")
            dmo = &r;
    }
    ASSERT_NE(dmo, nullptr);
    // Applies to the acquire load (event 2), not to the plain load.
    EXPECT_TRUE(rel::evalFormula(
        dmo->applies(scc->base(), singleton(2, 4), 4), inst));
    EXPECT_FALSE(rel::evalFormula(
        dmo->applies(scc->base(), singleton(3, 4), 4), inst));

    Env perturbed = dmo->perturb(scc->base(), singleton(2, 4), 4);
    Bitset acq = rel::evalSet(perturbed.get(kAcq), inst);
    EXPECT_FALSE(acq.test(2));
}

} // namespace
} // namespace lts::mm
