/**
 * @file
 * Unit tests for string helpers and the flag parser.
 */

#include <gtest/gtest.h>

#include "common/flags.hh"
#include "common/strings.hh"

namespace lts
{
namespace
{

TEST(StringsTest, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitDropsEmptyByDefault)
{
    auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "c");
}

TEST(StringsTest, SplitKeepsEmptyWhenAsked)
{
    auto parts = split("a,,c", ',', true);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, JoinRoundTrip)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, "-"), "x-y-z");
    EXPECT_EQ(join({}, "-"), "");
}

TEST(StringsTest, TrimAndPad)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("long", 2), "long");
}

TEST(StringsTest, StartsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-f", "--"));
}

TEST(FlagsTest, DefaultsAndOverrides)
{
    Flags flags;
    flags.declare("bound", "4", "max instructions");
    flags.declare("verbose", "false", "chatty output");
    const char *argv[] = {"prog", "--bound=6", "--verbose"};
    ASSERT_TRUE(flags.parse(3, const_cast<char **>(argv)));
    EXPECT_EQ(flags.getInt("bound"), 6);
    EXPECT_TRUE(flags.getBool("verbose"));
}

TEST(FlagsTest, SpaceSeparatedValue)
{
    Flags flags;
    flags.declare("model", "tso", "model name");
    const char *argv[] = {"prog", "--model", "power"};
    ASSERT_TRUE(flags.parse(3, const_cast<char **>(argv)));
    EXPECT_EQ(flags.get("model"), "power");
}

TEST(FlagsTest, UnknownFlagRejected)
{
    Flags flags;
    flags.declare("bound", "4", "max instructions");
    const char *argv[] = {"prog", "--nope=1"};
    EXPECT_FALSE(flags.parse(2, const_cast<char **>(argv)));
}

TEST(FlagsTest, PositionalArgumentsCollected)
{
    Flags flags;
    flags.declare("bound", "4", "max instructions");
    const char *argv[] = {"prog", "file1", "--bound=5", "file2"};
    ASSERT_TRUE(flags.parse(4, const_cast<char **>(argv)));
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "file1");
    EXPECT_EQ(flags.positional()[1], "file2");
    EXPECT_EQ(flags.getInt("bound"), 5);
}

TEST(FlagsTest, UndeclaredAccessThrows)
{
    Flags flags;
    EXPECT_THROW(flags.get("missing"), std::out_of_range);
}

} // namespace
} // namespace lts
