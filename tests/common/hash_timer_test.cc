/**
 * @file
 * Unit tests for the hashing helpers and the wall-clock timer.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/hash.hh"
#include "common/timer.hh"

namespace lts
{
namespace
{

TEST(HashTest, MixerIsDeterministicAndSpreads)
{
    EXPECT_EQ(hashMix(42), hashMix(42));
    std::set<uint64_t> values;
    for (uint64_t i = 0; i < 1000; i++)
        values.insert(hashMix(i));
    EXPECT_EQ(values.size(), 1000u); // no collisions on tiny inputs
}

TEST(HashTest, CombineOrderMatters)
{
    uint64_t h1 = hashCombine(hashCombine(hashInit(), 1), 2);
    uint64_t h2 = hashCombine(hashCombine(hashInit(), 2), 1);
    EXPECT_NE(h1, h2);
}

TEST(HashTest, StringHashingRespectsContentAndLength)
{
    uint64_t a = hashCombine(hashInit(), std::string_view("ab"));
    uint64_t b = hashCombine(hashInit(), std::string_view("ba"));
    uint64_t c = hashCombine(hashInit(), std::string_view("ab"));
    EXPECT_NE(a, b);
    EXPECT_EQ(a, c);
    // Length is folded in: "a" then "b" differs from "ab" as one piece
    // only by boundary, which the length suffix disambiguates.
    uint64_t split = hashCombine(hashCombine(hashInit(),
                                             std::string_view("a")),
                                 std::string_view("b"));
    EXPECT_NE(split, a);
}

TEST(TimerTest, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    double first = t.seconds();
    EXPECT_GE(first, 0.015);
    EXPECT_LT(first, 5.0);
    EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 50.0);
    t.reset();
    EXPECT_LT(t.seconds(), first);
}

} // namespace
} // namespace lts
