/**
 * @file
 * Unit tests for Bitset and BitMatrix: the containers backing the
 * concrete relational evaluator.
 */

#include <gtest/gtest.h>

#include "common/bitset.hh"

namespace lts
{
namespace
{

TEST(BitsetTest, StartsEmpty)
{
    Bitset b(70);
    EXPECT_EQ(b.size(), 70u);
    EXPECT_EQ(b.count(), 0u);
    EXPECT_TRUE(b.none());
    EXPECT_FALSE(b.any());
}

TEST(BitsetTest, SetTestReset)
{
    Bitset b(130);
    b.set(0);
    b.set(63);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.count(), 4u);
    b.reset(63);
    EXPECT_FALSE(b.test(63));
    EXPECT_EQ(b.count(), 3u);
}

TEST(BitsetTest, SetOperations)
{
    Bitset a(10), b(10);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);

    Bitset u = a;
    u |= b;
    EXPECT_TRUE(u.test(1) && u.test(2) && u.test(3));
    EXPECT_EQ(u.count(), 3u);

    Bitset i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(2));

    Bitset d = a;
    d -= b;
    EXPECT_EQ(d.count(), 1u);
    EXPECT_TRUE(d.test(1));
}

TEST(BitsetTest, SubsetAndEquality)
{
    Bitset a(8), b(8);
    a.set(3);
    b.set(3);
    b.set(5);
    EXPECT_TRUE(a.isSubsetOf(b));
    EXPECT_FALSE(b.isSubsetOf(a));
    EXPECT_NE(a, b);
    a.set(5);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a.isSubsetOf(b));
}

TEST(BitsetTest, FirstSet)
{
    Bitset b(100);
    EXPECT_EQ(b.firstSet(), 100u);
    b.set(77);
    EXPECT_EQ(b.firstSet(), 77u);
    b.set(5);
    EXPECT_EQ(b.firstSet(), 5u);
}

TEST(BitsetTest, HashDiffersForDifferentContents)
{
    Bitset a(64), b(64);
    a.set(0);
    b.set(1);
    EXPECT_NE(a.hash(), b.hash());
    Bitset c(64);
    c.set(0);
    EXPECT_EQ(a.hash(), c.hash());
}

TEST(BitsetTest, ClearZeroesEverything)
{
    Bitset a(128);
    for (size_t i = 0; i < 128; i += 7)
        a.set(i);
    a.clear();
    EXPECT_TRUE(a.none());
}

TEST(BitMatrixTest, IdentityAndFull)
{
    auto id = BitMatrix::identity(4);
    EXPECT_EQ(id.count(), 4u);
    EXPECT_TRUE(id.test(2, 2));
    EXPECT_FALSE(id.test(2, 3));

    auto full = BitMatrix::full(4);
    EXPECT_EQ(full.count(), 16u);
}

TEST(BitMatrixTest, ComposeIsRelationalJoin)
{
    BitMatrix a(3), b(3);
    a.set(0, 1);
    b.set(1, 2);
    auto c = a.compose(b);
    EXPECT_TRUE(c.test(0, 2));
    EXPECT_EQ(c.count(), 1u);
}

TEST(BitMatrixTest, ComposeWithIdentityIsIdentityOp)
{
    BitMatrix a(5);
    a.set(0, 3);
    a.set(4, 1);
    auto id = BitMatrix::identity(5);
    EXPECT_EQ(a.compose(id), a);
    EXPECT_EQ(id.compose(a), a);
}

TEST(BitMatrixTest, Transpose)
{
    BitMatrix a(3);
    a.set(0, 2);
    a.set(1, 0);
    auto t = a.transpose();
    EXPECT_TRUE(t.test(2, 0));
    EXPECT_TRUE(t.test(0, 1));
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.transpose(), a);
}

TEST(BitMatrixTest, TransitiveClosureChain)
{
    BitMatrix a(4);
    a.set(0, 1);
    a.set(1, 2);
    a.set(2, 3);
    auto c = a.transitiveClosure();
    EXPECT_TRUE(c.test(0, 3));
    EXPECT_TRUE(c.test(0, 2));
    EXPECT_TRUE(c.test(1, 3));
    EXPECT_FALSE(c.test(3, 0));
    EXPECT_EQ(c.count(), 6u);
}

TEST(BitMatrixTest, ReflexiveTransitiveClosureAddsIdentity)
{
    BitMatrix a(3);
    a.set(0, 1);
    auto c = a.reflexiveTransitiveClosure();
    EXPECT_TRUE(c.test(0, 0));
    EXPECT_TRUE(c.test(1, 1));
    EXPECT_TRUE(c.test(2, 2));
    EXPECT_TRUE(c.test(0, 1));
    EXPECT_EQ(c.count(), 4u);
}

TEST(BitMatrixTest, AcyclicityDetection)
{
    BitMatrix dag(3);
    dag.set(0, 1);
    dag.set(1, 2);
    dag.set(0, 2);
    EXPECT_TRUE(dag.isAcyclic());

    BitMatrix cyc = dag;
    cyc.set(2, 0);
    EXPECT_FALSE(cyc.isAcyclic());

    BitMatrix self(2);
    self.set(1, 1);
    EXPECT_FALSE(self.isAcyclic());
    EXPECT_FALSE(self.isIrreflexive());
    EXPECT_TRUE(dag.isIrreflexive());
}

TEST(BitMatrixTest, SetDifferenceAndSubset)
{
    BitMatrix a(3), b(3);
    a.set(0, 1);
    a.set(1, 2);
    b.set(1, 2);
    EXPECT_TRUE(b.isSubsetOf(a));
    a -= b;
    EXPECT_EQ(a.count(), 1u);
    EXPECT_TRUE(a.test(0, 1));
}

TEST(BitMatrixTest, HashMatchesContent)
{
    BitMatrix a(4), b(4);
    a.set(1, 2);
    b.set(1, 2);
    EXPECT_EQ(a.hash(), b.hash());
    b.set(2, 1);
    EXPECT_NE(a.hash(), b.hash());
}

} // namespace
} // namespace lts
