/**
 * @file
 * ThreadPool tests: job completion, counter accounting, exception
 * propagation, and reuse across wait() rounds. These are the tests the
 * CI thread-sanitizer job exercises.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/pool.hh"

namespace lts
{
namespace
{

TEST(ThreadPoolTest, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; i++)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, CountersAccountForAllJobs)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 37; i++)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    PoolCounters c = pool.counters();
    EXPECT_EQ(c.queued, 37u);
    EXPECT_EQ(c.done, 37u);
    EXPECT_EQ(c.running, 0u);
    EXPECT_EQ(ran.load(), 37);
}

TEST(ThreadPoolTest, SingleWorkerStillDrainsQueue)
{
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    // One worker runs the FIFO queue in submission order.
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("job failed"); });
    for (int i = 0; i < 10; i++)
        pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure does not poison the pool: later rounds still work.
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, ReusableAcrossWaitRounds)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; round++) {
        for (int i = 0; i < 20; i++)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 20);
    }
    EXPECT_EQ(pool.counters().done, 100u);
}

TEST(ThreadPoolTest, ResolveThreadsClampsAndDefaults)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_GE(ThreadPool::resolveThreads(-2), 1u);
}

TEST(ThreadPoolTest, DestructorWaitsForOutstandingJobs)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; i++)
            pool.submit([&done] { done.fetch_add(1); });
        // No wait(): the destructor must drain the queue before joining.
    }
    EXPECT_EQ(done.load(), 16);
}

} // namespace
} // namespace lts
