/**
 * @file
 * Cross-cutting catalog checks: every baseline-suite entry round-trips
 * through the interchange format, converts to a well-formed instance of
 * its model, and (for the Owens suite) agrees with the store-buffer
 * machine on the observability of its declared outcome.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "litmus/format.hh"
#include "mm/convert.hh"
#include "mm/registry.hh"
#include "rel/eval.hh"
#include "sim/opsim.hh"
#include "suites/cambridge.hh"
#include "suites/owens.hh"

namespace lts::suites
{
namespace
{

TEST(CatalogRoundTripTest, OwensThroughFormat)
{
    for (const auto &e : owensSuite()) {
        litmus::LitmusTest back =
            litmus::parseLitmus(litmus::writeLitmus(e.test));
        EXPECT_EQ(litmus::fullSerialize(back),
                  litmus::fullSerialize(e.test))
            << e.test.name;
        EXPECT_EQ(back.name, e.test.name);
    }
}

TEST(CatalogRoundTripTest, CambridgeThroughFormat)
{
    for (const auto &e : cambridgeSuite()) {
        litmus::LitmusTest back =
            litmus::parseLitmus(litmus::writeLitmus(e.test));
        EXPECT_EQ(litmus::fullSerialize(back),
                  litmus::fullSerialize(e.test))
            << e.test.name;
    }
}

TEST(CatalogRoundTripTest, OwensInstancesAreWellFormedUnderTso)
{
    auto tso = mm::makeModel("tso");
    for (const auto &e : owensSuite()) {
        rel::Instance inst = mm::toInstance(*tso, e.test, e.test.forbidden);
        EXPECT_TRUE(rel::evalFormula(tso->wellFormed(e.test.size()), inst))
            << e.test.name;
    }
}

TEST(CatalogRoundTripTest, CambridgeInstancesAreWellFormedUnderPower)
{
    auto power = mm::makeModel("power");
    for (const auto &e : cambridgeSuite()) {
        rel::Instance inst =
            mm::toInstance(*power, e.test, e.test.forbidden);
        EXPECT_TRUE(
            rel::evalFormula(power->wellFormed(e.test.size()), inst))
            << e.test.name;
    }
}

TEST(CatalogRoundTripTest, OwensOutcomesMatchStoreBufferMachine)
{
    // The machine observes an entry's outcome iff the entry is one of
    // the documented ALLOWED tests.
    for (const auto &e : owensSuite()) {
        auto sig = sim::observableSignature(e.test, e.test.forbidden);
        bool observed = sim::tsoOutcomes(e.test).count(sig) > 0;
        EXPECT_EQ(observed, !e.expectForbidden) << e.test.name;
    }
}

TEST(CatalogRoundTripTest, CanonicalFormsAreDistinct)
{
    // No two catalog entries collapse to the same canonical test (each
    // entry earns its place in the suite).
    std::set<std::string> keys;
    for (const auto &e : owensSuite()) {
        std::string key = litmus::staticSerialize(
            litmus::canonicalize(e.test, litmus::CanonMode::Exact));
        EXPECT_TRUE(keys.insert(key).second)
            << "duplicate canonical form: " << e.test.name;
    }
    keys.clear();
    for (const auto &e : cambridgeSuite()) {
        std::string key = litmus::staticSerialize(
            litmus::canonicalize(e.test, litmus::CanonMode::Exact));
        EXPECT_TRUE(keys.insert(key).second)
            << "duplicate canonical form: " << e.test.name;
    }
}

} // namespace
} // namespace lts::suites
