/**
 * @file
 * Baseline-suite tests: the Owens and Cambridge catalogs are structurally
 * valid, their legality expectations hold under the corresponding
 * axiomatic models, and the minimality split matches Table 4 / §6.2.
 */

#include <gtest/gtest.h>

#include <set>

#include "mm/registry.hh"
#include "suites/cambridge.hh"
#include "suites/owens.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"

namespace lts::suites
{
namespace
{

TEST(OwensSuiteTest, HasTwentyFourTestsFifteenForbidden)
{
    auto suite = owensSuite();
    EXPECT_EQ(suite.size(), 24u);
    EXPECT_EQ(owensForbidden().size(), 15u);
}

TEST(OwensSuiteTest, AllTestsValidateAndHaveOutcomes)
{
    std::set<std::string> names;
    for (const auto &e : owensSuite()) {
        EXPECT_EQ(e.test.validate(), "") << e.test.name;
        EXPECT_TRUE(e.test.hasForbidden) << e.test.name;
        EXPECT_TRUE(names.insert(e.test.name).second)
            << "duplicate name " << e.test.name;
    }
}

TEST(OwensSuiteTest, LegalityMatchesExpectations)
{
    auto tso = mm::makeModel("tso");
    for (const auto &e : owensSuite()) {
        bool legal = synth::isLegal(*tso, e.test, e.test.forbidden);
        EXPECT_EQ(legal, !e.expectForbidden) << e.test.name;
    }
}

TEST(OwensSuiteTest, MinimalitySplitMatchesTable4)
{
    // Per Table 4: the "Owens only" tests are non-minimal; the "Both"
    // tests are minimal for some TSO axiom.
    auto tso = mm::makeModel("tso");
    std::set<std::string> expect_minimal = {
        "MP", "LB", "S", "2+2W", "amd5/SB+mfences", "amd6/IRIW",
        "n4/R+mfence", "iwp2.8.a/WRC", "RWC+mfence",
    };
    std::set<std::string> expect_not_minimal = {
        "n5/CoLB", "iwp2.8.b", "iwp2.6/CoIRIW", "amd10", "iwp2.7/amd7",
        "n3",
    };
    for (const auto &e : owensSuite()) {
        if (!e.expectForbidden)
            continue;
        bool minimal = !synth::minimalAxioms(*tso, e.test).empty();
        if (expect_minimal.count(e.test.name))
            EXPECT_TRUE(minimal) << e.test.name;
        else if (expect_not_minimal.count(e.test.name))
            EXPECT_FALSE(minimal) << e.test.name;
        else
            ADD_FAILURE() << "unclassified test " << e.test.name;
    }
}

TEST(OwensSuiteTest, SizesMatchTable4Rows)
{
    std::map<std::string, size_t> sizes;
    for (const auto &e : owensSuite())
        sizes[e.test.name] = e.test.size();
    EXPECT_EQ(sizes["MP"], 4u);
    EXPECT_EQ(sizes["LB"], 4u);
    EXPECT_EQ(sizes["S"], 4u);
    EXPECT_EQ(sizes["2+2W"], 4u);
    EXPECT_EQ(sizes["n5/CoLB"], 4u);
    EXPECT_EQ(sizes["iwp2.8.b"], 5u);
    EXPECT_EQ(sizes["iwp2.6/CoIRIW"], 6u);
    EXPECT_EQ(sizes["amd5/SB+mfences"], 6u);
    EXPECT_EQ(sizes["amd6/IRIW"], 6u);
    EXPECT_EQ(sizes["amd10"], 8u);
    EXPECT_EQ(sizes["iwp2.7/amd7"], 8u);
    EXPECT_EQ(sizes["n3"], 9u);
}

TEST(CambridgeSuiteTest, AllTestsValidate)
{
    for (const auto &e : cambridgeSuite()) {
        EXPECT_EQ(e.test.validate(), "") << e.test.name;
        EXPECT_TRUE(e.test.hasForbidden) << e.test.name;
    }
    EXPECT_GE(cambridgeForbidden().size(), 10u);
}

TEST(CambridgeSuiteTest, LegalityMatchesExpectationsUnderPower)
{
    auto power = mm::makeModel("power");
    for (const auto &e : cambridgeSuite()) {
        bool legal = synth::isLegal(*power, e.test, e.test.forbidden);
        EXPECT_EQ(legal, !e.expectForbidden) << e.test.name;
    }
}

TEST(CambridgeSuiteTest, PpoaaSyncVariantIsNotMinimalButLwsyncIs)
{
    // The Section 6.2 PPOAA claim.
    auto power = mm::makeModel("power");
    const litmus::LitmusTest *ppoaa = nullptr;
    const litmus::LitmusTest *ppoaa_lwsync = nullptr;
    auto suite = cambridgeSuite();
    for (const auto &e : suite) {
        if (e.test.name == "PPOAA")
            ppoaa = &e.test;
        if (e.test.name == "PPOAA+lwsync")
            ppoaa_lwsync = &e.test;
    }
    ASSERT_NE(ppoaa, nullptr);
    ASSERT_NE(ppoaa_lwsync, nullptr);
    EXPECT_TRUE(synth::minimalAxioms(*power, *ppoaa).empty());
    EXPECT_FALSE(synth::minimalAxioms(*power, *ppoaa_lwsync).empty());
}

TEST(CambridgeSuiteTest, AddrVersusDataStrength)
{
    // lb+addrs+ww (Section 6.2): the addr flavor is forbidden, the data
    // flavor allowed, because cc0 includes addr;po but not data;po.
    auto power = mm::makeModel("power");
    const CatalogEntry *addr = nullptr;
    const CatalogEntry *data = nullptr;
    auto suite = cambridgeSuite();
    for (const auto &e : suite) {
        if (e.test.name == "LB+addr+po+ww")
            addr = &e;
        if (e.test.name == "LB+data+po+ww")
            data = &e;
    }
    ASSERT_NE(addr, nullptr);
    ASSERT_NE(data, nullptr);
    EXPECT_FALSE(synth::isLegal(*power, addr->test, addr->test.forbidden));
    EXPECT_TRUE(synth::isLegal(*power, data->test, data->test.forbidden));
}

TEST(CambridgeSuiteTest, SyncRestoresIriwButLwsyncDoesNot)
{
    auto power = mm::makeModel("power");
    bool saw_sync = false, saw_lwsync = false;
    for (const auto &e : cambridgeSuite()) {
        if (e.test.name == "IRIW+syncs") {
            saw_sync = true;
            EXPECT_TRUE(e.expectForbidden);
        }
        if (e.test.name == "IRIW+lwsyncs") {
            saw_lwsync = true;
            EXPECT_FALSE(e.expectForbidden);
        }
    }
    EXPECT_TRUE(saw_sync);
    EXPECT_TRUE(saw_lwsync);
}

} // namespace
} // namespace lts::suites
