/**
 * @file
 * Service-layer tests: cold/warm byte identity through the store and
 * the resident (daemon-mode) path, registry-wide agreement with a plain
 * synthesizeAll run, shard-level invalidation when one axiom is edited,
 * digest semantics, and the request/result wire payload round trip.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "litmus/canon.hh"
#include "litmus/digest.hh"
#include "mm/registry.hh"
#include "rel/formula.hh"
#include "synth/service.hh"
#include "synth/synthesizer.hh"

using namespace lts;
namespace fs = std::filesystem;

namespace
{

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = (fs::temp_directory_path() /
               ("lts-service-test-" + std::to_string(::getpid()) + "-" +
                info->name()))
                  .string();
        fs::remove_all(dir);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir);
    }

    synth::ServiceConfig
    storeConfig(bool resident = false) const
    {
        synth::ServiceConfig config;
        config.storeDir = dir;
        config.residentEncodings = resident;
        return config;
    }

    std::string dir;
};

/** Suites compare equal iff their tests serialize identically in order. */
void
expectSameTests(const synth::Suite &a, const synth::Suite &b)
{
    ASSERT_EQ(a.tests.size(), b.tests.size());
    for (size_t i = 0; i < a.tests.size(); i++) {
        EXPECT_EQ(litmus::fullSerialize(a.tests[i]),
                  litmus::fullSerialize(b.tests[i]))
            << "test " << i << " differs";
    }
}

TEST_F(ServiceTest, ColdThenWarmStoreQueryIsByteIdentical)
{
    synth::SuiteRequest request;
    request.model = "tso";
    request.maxSize = 4;

    synth::Service cold_service(storeConfig());
    synth::SuiteResult cold = cold_service.query(request);
    EXPECT_EQ(cold.cache, synth::CacheOutcome::Miss);
    EXPECT_EQ(cold.shardsCached, 0u);
    EXPECT_GT(cold.shardsSynthesized, 0u);

    // A separate Service on the same directory models a fresh process.
    synth::Service warm_service(storeConfig());
    synth::SuiteResult warm = warm_service.query(request);
    EXPECT_EQ(warm.cache, synth::CacheOutcome::Hit);
    EXPECT_EQ(warm.shardsSynthesized, 0u);
    EXPECT_EQ(warm.shardsCached, cold.shardsSynthesized);
    for (const auto &shard : warm.shards)
        EXPECT_TRUE(shard.cached);

    EXPECT_EQ(warm.suiteDigest, cold.suiteDigest);
    EXPECT_EQ(warm.modelDigest, cold.modelDigest);
    ASSERT_EQ(warm.suites.size(), cold.suites.size());
    for (size_t i = 0; i < warm.suites.size(); i++)
        expectSameTests(warm.suites[i], cold.suites[i]);

    // The warm path must not have touched a solver at all.
    EXPECT_EQ(warm.progress.jobsQueued, 0u);
    EXPECT_EQ(warm.progress.instances, 0u);
}

TEST_F(ServiceTest, RegistryWideWarmResidentMatchesColdSynthesizeAll)
{
    // Every registered model: a warm daemon-style answer (resident
    // encodings + store) must be byte-identical to a plain cold
    // synthesizeAll run, digest and test bytes alike.
    for (const std::string &name : mm::modelNames()) {
        SCOPED_TRACE(name);
        auto model = mm::makeModel(name);

        // Power and ARMv7 cost ~25s per run at bound 3; bound 2 still
        // exercises their full axiom set through both paths.
        const int bound = (name == "power" || name == "armv7") ? 2 : 3;
        synth::SynthOptions opt;
        opt.maxSize = bound;
        auto cold_suites = synth::synthesizeAll(*model, opt);

        synth::SuiteRequest request;
        request.model = name;
        request.maxSize = bound;

        synth::Service daemonish(storeConfig(/*resident=*/true));
        synth::SuiteResult first = daemonish.query(request);
        synth::SuiteResult warm = daemonish.query(request);

        EXPECT_EQ(warm.cache, synth::CacheOutcome::Hit);
        EXPECT_EQ(warm.suiteDigest, first.suiteDigest);
        EXPECT_EQ(warm.suiteDigest,
                  litmus::suiteDigest(cold_suites.back().tests));
        ASSERT_EQ(warm.suites.size(), cold_suites.size());
        for (size_t i = 0; i < warm.suites.size(); i++)
            expectSameTests(warm.suites[i], cold_suites[i]);

        fs::remove_all(dir); // fresh store for the next model
    }
}

TEST_F(ServiceTest, EditingOneAxiomResynthesizesOnlyItsShards)
{
    auto model = mm::makeModel("tso");
    const std::string edited = model->axioms().front().name;
    const size_t n_axioms = model->axioms().size();
    ASSERT_GT(n_axioms, 1u);

    // Freeze the relaxed form first: relaxedPred defaults to pred, and
    // the minimality base renders every axiom's relaxed form, so editing
    // pred without pinning relaxedPred would invalidate the shared base
    // encodings (and every shard) instead of one axiom's shards.
    auto &target = model->axiomMut(edited);
    target.relaxedPred = target.pred;

    synth::SuiteRequest request;
    request.model = "tso";
    request.maxSize = 4;
    const size_t n_sizes =
        static_cast<size_t>(request.maxSize - request.options.minSize + 1);

    synth::Service daemonish(storeConfig(/*resident=*/true));
    synth::SuiteResult before = daemonish.query(*model, request);
    EXPECT_EQ(before.shardsSynthesized, n_axioms * n_sizes);
    size_t encodings_before = daemonish.residentEncodings();
    EXPECT_GT(encodings_before, 0u);

    // Edit the axiom's predicate to a structurally different, logically
    // equivalent formula: the axiom's violation digest changes, the
    // shared base formula does not.
    auto original = target.pred;
    target.pred = [original](const mm::Model &m, const mm::Env &env,
                             size_t n) {
        auto f = original(m, env, n);
        return rel::mkAnd(f, f);
    };

    synth::SuiteResult after = daemonish.query(*model, request);
    EXPECT_EQ(after.cache, synth::CacheOutcome::Partial);
    EXPECT_EQ(after.shardsSynthesized, n_sizes);
    EXPECT_EQ(after.shardsCached, (n_axioms - 1) * n_sizes);
    for (const auto &shard : after.shards) {
        EXPECT_EQ(shard.cached, shard.axiom != edited)
            << shard.axiom << "@" << shard.size;
    }
    // Only the edited axiom's shards went through a solver...
    EXPECT_EQ(after.progress.jobsQueued, n_sizes);
    EXPECT_EQ(after.progress.jobsDone, n_sizes);
    // ...on the base encodings that stayed resident across the edit.
    EXPECT_EQ(daemonish.residentEncodings(), encodings_before);

    // The edit was logically a no-op, so the suite bytes must agree.
    EXPECT_EQ(after.suiteDigest, before.suiteDigest);
}

TEST_F(ServiceTest, OptionsDigestIgnoresEngineKnobs)
{
    synth::SynthOptions semantic;
    synth::SynthOptions engine = semantic;
    // Engine knobs: byte-identical output by contract, so repeat queries
    // under a different execution strategy still hit.
    engine.incremental = !engine.incremental;
    engine.jobs = 7;
    engine.symmetryBreaking = !engine.symmetryBreaking;
    EXPECT_EQ(synth::optionsDigest(semantic), synth::optionsDigest(engine));

    synth::SynthOptions canon_off = semantic;
    canon_off.useCanon = false;
    EXPECT_NE(synth::optionsDigest(semantic),
              synth::optionsDigest(canon_off));

    synth::SynthOptions capped = semantic;
    capped.maxTestsPerSize = 5;
    EXPECT_NE(synth::optionsDigest(semantic), synth::optionsDigest(capped));
}

TEST_F(ServiceTest, ModelDigestIsStableAndEditSensitive)
{
    EXPECT_EQ(mm::makeModel("tso")->digest(), mm::makeModel("tso")->digest());
    EXPECT_NE(mm::makeModel("tso")->digest(), mm::makeModel("sc")->digest());

    auto model = mm::makeModel("tso");
    std::string before = model->digest();
    auto &axiom = model->axiomMut(model->axioms().front().name);
    axiom.relaxedPred = axiom.pred;
    auto original = axiom.pred;
    axiom.pred = [original](const mm::Model &m, const mm::Env &env,
                            size_t n) {
        auto f = original(m, env, n);
        return rel::mkAnd(f, f);
    };
    EXPECT_NE(model->digest(), before);
}

TEST_F(ServiceTest, RequestPayloadRoundTrips)
{
    synth::SuiteRequest request;
    request.model = "scc";
    request.axiom = "sc";
    request.maxSize = 5;
    request.options.minSize = 3;
    request.options.useCanon = false;
    request.options.jobs = 4;
    request.options.incremental = false;
    request.options.maxTestsPerSize = 17;

    synth::SuiteRequest back =
        synth::parseSuiteRequest(synth::serializeSuiteRequest(request));
    EXPECT_EQ(back.model, request.model);
    EXPECT_EQ(back.axiom, request.axiom);
    EXPECT_EQ(back.maxSize, request.maxSize);
    EXPECT_EQ(back.options.minSize, request.options.minSize);
    EXPECT_EQ(back.options.useCanon, request.options.useCanon);
    EXPECT_EQ(back.options.jobs, request.options.jobs);
    EXPECT_EQ(back.options.incremental, request.options.incremental);
    EXPECT_EQ(back.options.maxTestsPerSize, request.options.maxTestsPerSize);
}

TEST_F(ServiceTest, ResultPayloadRoundTrips)
{
    synth::SuiteRequest request;
    request.model = "sc";
    request.maxSize = 3;

    synth::Service service(storeConfig());
    synth::SuiteResult result = service.query(request);

    synth::SuiteResult back =
        synth::parseSuiteResult(synth::serializeSuiteResult(result));
    EXPECT_EQ(back.suiteDigest, result.suiteDigest);
    EXPECT_EQ(back.modelDigest, result.modelDigest);
    EXPECT_EQ(back.optionsDigest, result.optionsDigest);
    EXPECT_EQ(back.cache, result.cache);
    EXPECT_EQ(back.shardsCached, result.shardsCached);
    EXPECT_EQ(back.shardsSynthesized, result.shardsSynthesized);
    EXPECT_EQ(back.progress.jobsQueued, result.progress.jobsQueued);
    EXPECT_EQ(back.progress.instances, result.progress.instances);
    ASSERT_EQ(back.shards.size(), result.shards.size());
    for (size_t i = 0; i < back.shards.size(); i++) {
        EXPECT_EQ(back.shards[i].axiom, result.shards[i].axiom);
        EXPECT_EQ(back.shards[i].size, result.shards[i].size);
        EXPECT_EQ(back.shards[i].cached, result.shards[i].cached);
        EXPECT_EQ(back.shards[i].tests, result.shards[i].tests);
    }
    ASSERT_EQ(back.suites.size(), result.suites.size());
    for (size_t i = 0; i < back.suites.size(); i++)
        expectSameTests(back.suites[i], result.suites[i]);
    // Round-tripped bytes digest to the same suite digest.
    EXPECT_EQ(litmus::suiteDigest(back.unionSuite().tests),
              result.suiteDigest);
}

} // namespace
