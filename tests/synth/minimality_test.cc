/**
 * @file
 * Minimality-criterion tests: the paper's running examples.
 *
 *  - Figure 1 vs Figure 2: MP with one release and one acquire is
 *    minimal under SCC; adding a second release/acquire is not.
 *  - Figure 3: MP satisfies the criterion under TSO (RI on each event).
 *  - Figure 7: CoRW is minimal for coherence.
 *  - Figure 18/19: SB+FenceSCs is minimal under SCC only because the
 *    relaxed check also tries the reversed sc edge.
 */

#include <gtest/gtest.h>

#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"

namespace lts::synth
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

/** MP with configurable annotation strength (Figures 1 and 2). */
LitmusTest
mpScc(bool extra_release, bool extra_acquire)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x",
            extra_release ? MemOrder::Release : MemOrder::Plain);
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x",
                    extra_acquire ? MemOrder::Acquire : MemOrder::Plain);
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP-scc");
}

TEST(MinimalityTest, Figure1MpIsMinimalUnderScc)
{
    auto scc = mm::makeModel("scc");
    auto axioms = minimalAxioms(*scc, mpScc(false, false));
    EXPECT_TRUE(std::find(axioms.begin(), axioms.end(), "causality") !=
                axioms.end());
}

TEST(MinimalityTest, Figure2OverSynchronizedMpIsNotMinimal)
{
    auto scc = mm::makeModel("scc");
    EXPECT_TRUE(minimalAxioms(*scc, mpScc(true, true)).empty());
    EXPECT_TRUE(minimalAxioms(*scc, mpScc(true, false)).empty());
    EXPECT_TRUE(minimalAxioms(*scc, mpScc(false, true)).empty());
}

TEST(MinimalityTest, Figure3MpSatisfiesCriterionUnderTso)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    LitmusTest mp = b.build("MP");
    auto axioms = minimalAxioms(*tso, mp);
    ASSERT_EQ(axioms.size(), 1u);
    EXPECT_EQ(axioms[0], "causality");
}

TEST(MinimalityTest, Figure7CoRWIsMinimalForCoherence)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    int ld = b.read(t0, "x");
    int st1 = b.write(t0, "x");
    int t1 = b.newThread();
    int st2 = b.write(t1, "x");
    b.readsFrom(st2, ld);
    b.coOrder(st1, st2);
    LitmusTest corw = b.build("CoRW");
    auto axioms = minimalAxioms(*tso, corw);
    EXPECT_TRUE(std::find(axioms.begin(), axioms.end(), "sc_per_loc") !=
                axioms.end());
}

TEST(MinimalityTest, WeakenedCoRWIsNotForbidden)
{
    // Dropping the co constraint's witness to the allowed direction
    // makes the outcome legal, hence not minimal for any axiom.
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    int ld = b.read(t0, "x");
    int st1 = b.write(t0, "x");
    int t1 = b.newThread();
    int st2 = b.write(t1, "x");
    b.readsFrom(st2, ld);
    b.coOrder(st2, st1); // reading a co-earlier store: fine
    LitmusTest ok = b.build("CoRW-legal");
    EXPECT_TRUE(minimalAxioms(*tso, ok).empty());
}

/** SB with FenceSC on both sides (Figure 18a). */
LitmusTest
sbFenceSc()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::SeqCst);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+FenceSCs");
}

TEST(MinimalityTest, Figure19ScWorkaroundAdmitsSb)
{
    // With the Figure 19 workaround (relaxedPred tries both sc
    // orientations) SB must satisfy the criterion for causality.
    auto scc = mm::makeModel("scc");
    auto axioms = minimalAxioms(*scc, sbFenceSc());
    EXPECT_TRUE(std::find(axioms.begin(), axioms.end(), "causality") !=
                axioms.end());
}

TEST(MinimalityTest, Figure18WithoutWorkaroundSbIsFalseNegative)
{
    // Without the relaxedPred variants the under-approximation of Figure
    // 5c kicks in and SB is (wrongly) rejected — the false negative the
    // paper describes. Check directly: for a fixed sc orientation the
    // base outcome is forbidden, yet the *strict* (non-workaround)
    // relaxation conjunct fails (Figure 18b).
    LitmusTest sb = sbFenceSc();
    auto model = mm::makeModel("scc");
    int fence0 = 1, fence1 = 4;
    rel::Instance fwd = mm::toInstance(*model, sb, sb.forbidden,
                                       {{fence0, fence1}});
    // Base outcome is forbidden with either orientation.
    rel::Evaluator ev_fwd(fwd);
    EXPECT_FALSE(ev_fwd.formula(
        model->axiom("causality").pred(*model, model->base(), sb.size())));
    // But the *unrelaxed-variant* relaxation conjunct fails for this
    // orientation: removing the co-later thread's fence still leaves the
    // sc edge's constraint in place (Figure 18b).
    rel::FormulaPtr strict_conjunct = rel::mkTrue();
    for (const auto &relax : model->relaxations()) {
        for (size_t e = 0; e < sb.size(); e++) {
            auto evs = mm::singleton(e, sb.size());
            strict_conjunct = rel::mkAnd(
                strict_conjunct,
                rel::mkImplies(
                    relax.applies(model->base(), evs, sb.size()),
                    model->allAxioms(
                        relax.perturb(model->base(), evs, sb.size()),
                        sb.size())));
        }
    }
    rel::Evaluator ev2(fwd);
    EXPECT_FALSE(ev2.formula(strict_conjunct));
}

TEST(MinimalityTest, RedundantFenceFailsCriterion)
{
    // MP with a useless trailing fence: RI on the fence leaves the
    // outcome forbidden, so the test is not minimal (this is why "All
    // Progs" dwarfs the synthesized suites).
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    b.fence(t1, MemOrder::Plain);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    LitmusTest mp_fence = b.build("MP+fence");
    EXPECT_TRUE(minimalAxioms(*tso, mp_fence).empty());
}

TEST(MinimalityTest, AllowedOutcomeFailsCriterion)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB");
    EXPECT_TRUE(minimalAxioms(*tso, sb).empty());
}

TEST(ExecutorTest, AllOutcomesCountsForMp)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.write(t0, "y");
    int t1 = b.newThread();
    b.read(t1, "y");
    b.read(t1, "x");
    LitmusTest mp = b.build("MP");
    // Each read has 2 rf choices (initial or the single write); co fixed.
    EXPECT_EQ(allOutcomes(mp).size(), 4u);
}

TEST(ExecutorTest, AllOutcomesCountsWithCoChoices)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int t1 = b.newThread();
    b.write(t1, "x");
    int t2 = b.newThread();
    b.read(t2, "x");
    LitmusTest t = b.build("ww+r");
    // rf: 3 choices; co: 2 orders.
    EXPECT_EQ(allOutcomes(t).size(), 6u);
}

TEST(ExecutorTest, MpLegalOutcomesUnderTsoMatchFigure1)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.write(t0, "y");
    int t1 = b.newThread();
    b.read(t1, "y");
    b.read(t1, "x");
    LitmusTest mp = b.build("MP");
    auto legal = legalOutcomes(*tso, mp);
    // Figure 1: 3 of the 4 outcomes are legal; (r_flag=1, r_data=0) is
    // not.
    EXPECT_EQ(legal.size(), 3u);
    for (const auto &o : legal) {
        auto regs = mp.registerValues(o);
        EXPECT_FALSE(regs[2] == 1 && regs[3] == 0);
    }
}

TEST(ExecutorTest, ObservableProjectionDedupes)
{
    // Two writes to the same location, no reads: under the paper's value
    // convention (each write's value is its position in co) the two co
    // orders are observably identical — the final value is always "the
    // co-last write", i.e. 2. Both executions collapse to one outcome.
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int t1 = b.newThread();
    b.write(t1, "x");
    LitmusTest t = b.build("ww");
    auto outcomes = allOutcomes(t);
    EXPECT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(dedupeByObservable(t, outcomes).size(), 1u);

    // Add a read observing one write and the executions become
    // distinguishable: the read reports 1 or 2 depending on co.
    TestBuilder b2;
    int u0 = b2.newThread();
    b2.write(u0, "x");
    int u1 = b2.newThread();
    b2.write(u1, "x");
    int u2 = b2.newThread();
    b2.read(u2, "x");
    LitmusTest t2 = b2.build("ww+r");
    auto outcomes2 = allOutcomes(t2);
    EXPECT_EQ(outcomes2.size(), 6u);
    // Projections: read value in {0, 1, 2} x (final always 2) -> 3.
    EXPECT_EQ(dedupeByObservable(t2, outcomes2).size(), 3u);
}

TEST(MinimalityTest, AuditReportsUnsupportedBeyondTwoScFences)
{
    // The lone-sc workaround enumerates sc orientations only up to two
    // SC fences; with three the audit must say "unsupported", not
    // "minimal for no axiom".
    auto scc = mm::makeModel("scc");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::SeqCst);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::SeqCst);
    b.fence(t1, MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest three = b.build("SB+3FenceSCs");

    AuditStatus status;
    auto axioms = minimalAxioms(*scc, three, &status);
    EXPECT_EQ(status, AuditStatus::Unsupported);
    EXPECT_TRUE(axioms.empty());

    // A two-fence test audits normally.
    auto supported = minimalAxioms(*scc, sbFenceSc(), &status);
    EXPECT_EQ(status, AuditStatus::Audited);
    EXPECT_FALSE(supported.empty());
}

} // namespace
} // namespace lts::synth
