/**
 * @file
 * Parallel-engine tests: the sharded synthesizer must produce
 * byte-identical suites regardless of the job count (the deterministic
 * merge guarantee), and unionSuites must store canonicalized, renamed
 * tests (regression for the dedup-key/raw-test mismatch).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "litmus/canon.hh"
#include "litmus/test.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

using litmus::LitmusTest;
using litmus::TestBuilder;

/** Everything observable about a suite vector except timings. */
std::string
serializeSuites(const std::vector<Suite> &suites)
{
    std::string s;
    for (const auto &suite : suites) {
        s += suite.model + "/" + suite.axiom + " raw=" +
             std::to_string(suite.rawInstances) +
             (suite.truncated ? " truncated" : "") + "\n";
        for (auto [size, count] : suite.testsBySize)
            s += "  n=" + std::to_string(size) + ": " +
                 std::to_string(count) + "\n";
        for (const auto &t : suite.tests)
            s += t.name + "\n" + litmus::fullSerialize(t) + "\n";
    }
    return s;
}

TEST(ParallelSynthesisTest, JobCountDoesNotChangeOutput)
{
    for (const char *name : {"tso", "sc"}) {
        auto model = mm::makeModel(name);
        SynthOptions serial;
        serial.minSize = 2;
        serial.maxSize = 4;
        serial.jobs = 1;
        SynthOptions parallel = serial;
        parallel.jobs = 4;

        auto a = synthesizeAll(*model, serial);
        auto b = synthesizeAll(*model, parallel);
        EXPECT_EQ(serializeSuites(a), serializeSuites(b)) << name;
    }
}

TEST(ParallelSynthesisTest, SingleAxiomJobCountDoesNotChangeOutput)
{
    auto tso = mm::makeModel("tso");
    SynthOptions serial;
    serial.minSize = 2;
    serial.maxSize = 4;
    serial.jobs = 1;
    SynthOptions parallel = serial;
    parallel.jobs = 3;
    Suite a = synthesizeAxiom(*tso, "causality", serial);
    Suite b = synthesizeAxiom(*tso, "causality", parallel);
    EXPECT_EQ(serializeSuites({a}), serializeSuites({b}));
}

TEST(ParallelSynthesisTest, ProgressCountersCoverEveryJob)
{
    auto tso = mm::makeModel("tso");
    SynthProgress progress;
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 3;
    opt.jobs = 4;
    opt.progress = &progress;
    auto suites = synthesizeAll(*tso, opt);
    // Incremental engine: one shared-solver job per size.
    EXPECT_EQ(progress.jobsQueued.load(), 2u);
    EXPECT_EQ(progress.jobsDone.load(), 2u);
    EXPECT_EQ(progress.jobsRunning.load(), 0u);
    uint64_t raw = 0;
    for (const auto &s : suites) {
        if (s.axiom != "union")
            raw += s.rawInstances;
    }
    EXPECT_EQ(progress.instances.load(), raw);

    // From-scratch engine: one private solver per (axiom, size) pair.
    SynthProgress scratch_progress;
    opt.incremental = false;
    opt.progress = &scratch_progress;
    auto scratch = synthesizeAll(*tso, opt);
    EXPECT_EQ(scratch_progress.jobsQueued.load(), 6u);
    EXPECT_EQ(scratch_progress.jobsDone.load(), 6u);
    ASSERT_EQ(scratch.size(), suites.size());
    for (size_t i = 0; i < suites.size(); i++) {
        EXPECT_EQ(scratch[i].tests.size(), suites[i].tests.size());
        for (size_t t = 0; t < suites[i].tests.size(); t++) {
            EXPECT_EQ(litmus::fullSerialize(scratch[i].tests[t]),
                      litmus::fullSerialize(suites[i].tests[t]));
        }
    }
}

/** Hand-built MP (the Table 4 shape) for the union regression tests. */
LitmusTest
mpTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP");
}

TEST(UnionSuitesTest, StoresCanonicalFormAndRenumbers)
{
    LitmusTest mp = mpTest();
    // The same test under a thread swap: identical symmetry class,
    // different serialization. At most one of the two is canonical.
    LitmusTest swapped = litmus::permuteThreads(mp, {1, 0});
    ASSERT_NE(litmus::staticSerialize(mp), litmus::staticSerialize(swapped));

    Suite a;
    a.model = "tso";
    a.axiom = "causality";
    mp.name = "tso/causality#0";
    a.tests.push_back(mp);

    Suite b;
    b.model = "tso";
    b.axiom = "other";
    swapped.name = "tso/other#0";
    b.tests.push_back(swapped);

    SynthOptions opt; // useCanon = true, paper mode
    Suite u = unionSuites({a, b}, opt);

    // The symmetric copies merge, the stored test is the canonical
    // representative, and members are renamed into the union namespace.
    ASSERT_EQ(u.tests.size(), 1u);
    LitmusTest canon = litmus::canonicalize(mpTest(),
                                            litmus::CanonMode::Paper);
    EXPECT_EQ(litmus::staticSerialize(u.tests[0]),
              litmus::staticSerialize(canon));
    EXPECT_EQ(u.tests[0].name, "tso/union#0");
    EXPECT_EQ(u.testsBySize[4], 1);
}

TEST(UnionSuitesTest, RenumbersSequentiallyAcrossSuites)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synthesizeAll(*tso, opt);
    const Suite &u = suites.back();
    ASSERT_FALSE(u.tests.empty());
    for (size_t i = 0; i < u.tests.size(); i++) {
        EXPECT_EQ(u.tests[i].name,
                  "tso/union#" + std::to_string(i));
        // Union members are stored canonically: canonicalizing again is
        // a no-op on the serialized form.
        EXPECT_EQ(litmus::staticSerialize(u.tests[i]),
                  litmus::staticSerialize(litmus::canonicalize(
                      u.tests[i], opt.canonMode)));
    }
}

} // namespace
} // namespace lts::synth
