/**
 * @file
 * Suite-equivalence tests for in-solver symmetry breaking: for every
 * registered model, the synthesized suites must be byte-identical with
 * SBP on, SBP off, and under both engines — SBP may only change how
 * much raw enumeration happens, never what is emitted. This is the
 * determinism contract the BENCH_*.json suiteDigest field asserts in
 * CI, checked here at the library level.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

/**
 * Full byte-level fingerprint of a synthesis run's output: axiom names
 * and every test's serialization, but none of the effort counters
 * (rawInstances and friends legitimately differ across modes).
 */
std::string
suiteKey(const std::vector<Suite> &suites)
{
    std::string key;
    for (const Suite &suite : suites) {
        key += suite.model + "/" + suite.axiom + "\n";
        for (const auto &test : suite.tests)
            key += litmus::fullSerialize(test) + "\n";
    }
    return key;
}

struct RunResult
{
    std::string key;
    uint64_t rawInstances;
};

RunResult
run(const mm::Model &model, SynthOptions opt, bool sbp, bool incremental)
{
    opt.symmetryBreaking = sbp;
    opt.incremental = incremental;
    SynthProgress progress;
    opt.progress = &progress;
    auto suites = synthesizeAll(model, opt);
    return {suiteKey(suites), progress.instances.load()};
}

void
checkModel(const std::string &name, int max_size)
{
    auto model = mm::makeModel(name);
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;

    RunResult with_sbp = run(*model, opt, true, true);
    RunResult without = run(*model, opt, false, true);
    RunResult scratch = run(*model, opt, true, false);

    EXPECT_EQ(with_sbp.key, without.key)
        << name << ": SBP on/off suites differ";
    EXPECT_EQ(with_sbp.key, scratch.key)
        << name << ": incremental/from-scratch suites differ";
    EXPECT_LE(with_sbp.rawInstances, without.rawInstances)
        << name << ": SBP enumerated more raw instances than no-SBP";
}

TEST(SynthSymmetryTest, TsoSuitesIdenticalAcrossSbpAndEngine)
{
    checkModel("tso", 4);
}

TEST(SynthSymmetryTest, ScSuitesIdenticalAcrossSbpAndEngine)
{
    checkModel("sc", 4);
}

TEST(SynthSymmetryTest, RegistryWideSuitesIdenticalAcrossSbpAndEngine)
{
    // Every registered synthesizable model at the largest size that
    // keeps this a unit test; TSO/SC run a size bigger above.
    for (const std::string &name : mm::modelNames())
        checkModel(name, 3);
}

TEST(SynthSymmetryTest, SbpActuallyPrunesAtSizeFour)
{
    // The equivalence tests would pass trivially if the SBP never
    // installed; pin the tentpole's effect at a size where TSO has
    // real thread symmetry (two 2-op threads).
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    RunResult with_sbp = run(*tso, opt, true, true);
    RunResult without = run(*tso, opt, false, true);
    EXPECT_LT(with_sbp.rawInstances, without.rawInstances);
}

TEST(SynthSymmetryTest, AblationsIdenticalAcrossSbp)
{
    // The byte-identity contract must also hold under the ablation
    // knobs that change canonicalization and blocking granularity.
    auto tso = mm::makeModel("tso");
    for (int mode = 0; mode < 3; mode++) {
        SynthOptions opt;
        opt.minSize = 2;
        opt.maxSize = 3;
        if (mode == 0) {
            opt.canonMode = litmus::CanonMode::Exact;
        } else if (mode == 1) {
            opt.useCanon = false;
        } else {
            opt.blockStaticOnly = false;
        }
        RunResult with_sbp = run(*tso, opt, true, true);
        RunResult without = run(*tso, opt, false, true);
        EXPECT_EQ(with_sbp.key, without.key) << "ablation mode " << mode;
        EXPECT_LE(with_sbp.rawInstances, without.rawInstances)
            << "ablation mode " << mode;
    }
}

} // namespace
} // namespace lts::synth
