/**
 * @file
 * Synthesizer tests: the headline results of Section 6.
 *
 * The TSO size-4 causality suite must be exactly {MP, LB, S, 2+2W}
 * (Table 4's "Both" row); the coherence and rmw suites must saturate;
 * SAT and explicit engines must agree on every model at small bounds;
 * the WWC symmetry miss must show up under the paper-mode canonicalizer
 * and disappear in exact mode.
 */

#include <gtest/gtest.h>

#include <set>

#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/compare.hh"
#include "synth/explicit.hh"
#include "synth/minimality.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

using litmus::CanonMode;
using litmus::LitmusTest;
using litmus::TestBuilder;

std::set<std::string>
canonKeys(const std::vector<LitmusTest> &tests)
{
    std::set<std::string> out;
    for (const auto &t : tests) {
        out.insert(litmus::staticSerialize(
            litmus::canonicalize(t, CanonMode::Exact)));
    }
    return out;
}

TEST(SynthesizerTest, TsoCausalitySize4IsExactlyTheTable4Core)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 4;
    opt.maxSize = 4;
    Suite suite = synthesizeAxiom(*tso, "causality", opt);
    EXPECT_EQ(suite.tests.size(), 4u);

    // Build the four named tests and compare canonically.
    std::vector<LitmusTest> expected;
    {
        TestBuilder b; // MP
        int t0 = b.newThread();
        b.write(t0, "x");
        int wf = b.write(t0, "y");
        int t1 = b.newThread();
        int rf = b.read(t1, "y");
        int rd = b.read(t1, "x");
        b.readsFrom(wf, rf);
        b.readsInitial(rd);
        expected.push_back(b.build("MP"));
    }
    {
        TestBuilder b; // LB
        int t0 = b.newThread();
        int r0 = b.read(t0, "x");
        int w0 = b.write(t0, "y");
        int t1 = b.newThread();
        int r1 = b.read(t1, "y");
        int w1 = b.write(t1, "x");
        b.readsFrom(w1, r0);
        b.readsFrom(w0, r1);
        expected.push_back(b.build("LB"));
    }
    {
        TestBuilder b; // S
        int t0 = b.newThread();
        int wx2 = b.write(t0, "x");
        int wy = b.write(t0, "y");
        int t1 = b.newThread();
        int ry = b.read(t1, "y");
        int wx1 = b.write(t1, "x");
        b.readsFrom(wy, ry);
        b.coOrder(wx1, wx2);
        expected.push_back(b.build("S"));
    }
    {
        TestBuilder b; // 2+2W
        int t0 = b.newThread();
        int wx1 = b.write(t0, "x");
        int wy2 = b.write(t0, "y");
        int t1 = b.newThread();
        int wy1 = b.write(t1, "y");
        int wx2 = b.write(t1, "x");
        b.coOrder(wx2, wx1);
        b.coOrder(wy2, wy1);
        expected.push_back(b.build("2+2W"));
    }
    EXPECT_EQ(canonKeys(suite.tests), canonKeys(expected));
}

TEST(SynthesizerTest, TsoCoherenceSuiteSaturates)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 5;
    Suite suite = synthesizeAxiom(*tso, "sc_per_loc", opt);
    // Everything arrives by size 3; sizes 4 and 5 add nothing.
    EXPECT_GT(suite.testsBySize[2], 0);
    EXPECT_GT(suite.testsBySize[3], 0);
    EXPECT_EQ(suite.testsBySize[4], 0);
    EXPECT_EQ(suite.testsBySize[5], 0);
    EXPECT_EQ(suite.tests.size(), 5u);
}

TEST(SynthesizerTest, TsoRmwAtomicitySuiteSaturates)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 5;
    Suite suite = synthesizeAxiom(*tso, "rmw_atomicity", opt);
    EXPECT_EQ(suite.tests.size(), 1u);
    EXPECT_EQ(suite.testsBySize[3], 1);
    EXPECT_EQ(suite.testsBySize[4], 0);
    EXPECT_EQ(suite.testsBySize[5], 0);
    // The one test is the RMW-with-intervening-store shape (Figure 12
    // family): an rmw pair plus a remote store.
    const LitmusTest &t = suite.tests[0];
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.rmw.count(), 1u);
}

TEST(SynthesizerTest, SbIsAbsentFromTsoSuites)
{
    // SB's interesting outcome is allowed under TSO, so no TSO suite may
    // contain the fence-free SB.
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 4;
    opt.maxSize = 4;
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    std::string sb_key = litmus::staticSerialize(
        litmus::canonicalize(b.build("SB"), CanonMode::Exact));

    for (const auto &axiom : {"sc_per_loc", "rmw_atomicity", "causality"}) {
        Suite suite = synthesizeAxiom(*tso, axiom, opt);
        EXPECT_FALSE(canonKeys(suite.tests).count(sb_key)) << axiom;
    }
}

TEST(SynthesizerTest, UnionDeduplicatesAcrossAxioms)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synthesizeAll(*tso, opt);
    ASSERT_EQ(suites.size(), 4u); // 3 axioms + union
    const Suite &u = suites.back();
    EXPECT_EQ(u.axiom, "union");
    size_t sum = 0;
    for (size_t i = 0; i + 1 < suites.size(); i++)
        sum += suites[i].tests.size();
    // Overlap (Section 5.2): the union is strictly smaller than the sum.
    EXPECT_LT(u.tests.size(), sum);
    EXPECT_GE(u.tests.size(), suites[0].tests.size());
    // And the union equals the set-union of the parts.
    std::set<std::string> expect;
    for (size_t i = 0; i + 1 < suites.size(); i++) {
        auto keys = canonKeys(suites[i].tests);
        expect.insert(keys.begin(), keys.end());
    }
    EXPECT_EQ(canonKeys(u.tests), expect);
}

TEST(SynthesizerTest, EverySynthesizedTestAuditsAsMinimal)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    for (const auto &axiom : {"sc_per_loc", "causality"}) {
        Suite suite = synthesizeAxiom(*tso, axiom, opt);
        for (const auto &t : suite.tests) {
            auto axioms = minimalAxioms(*tso, t);
            EXPECT_TRUE(std::find(axioms.begin(), axioms.end(), axiom) !=
                        axioms.end())
                << litmus::toString(t);
        }
    }
}

TEST(SynthesizerTest, ConflictBudgetTruncates)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 4;
    opt.maxSize = 4;
    opt.conflictBudget = 1;
    Suite suite = synthesizeAxiom(*tso, "causality", opt);
    EXPECT_TRUE(suite.truncated);
}

TEST(SynthesizerTest, MaxTestsPerSizeCaps)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 4;
    opt.maxSize = 4;
    opt.maxTestsPerSize = 2;
    Suite suite = synthesizeAxiom(*tso, "causality", opt);
    EXPECT_TRUE(suite.truncated);
    EXPECT_EQ(suite.tests.size(), 2u);
}

class CrossEngineTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(CrossEngineTest, SatAndExplicitEnginesAgree)
{
    auto [name, max_size] = GetParam();
    auto model = mm::makeModel(name);
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;
    for (const auto &axiom : model->axioms()) {
        Suite sat = synthesizeAxiom(*model, axiom.name, opt);
        Suite exp = explicitSynthesizeAxiom(*model, axiom.name, opt);
        EXPECT_EQ(canonKeys(sat.tests), canonKeys(exp.tests))
            << model->name() << "/" << axiom.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, CrossEngineTest,
    ::testing::Values(std::make_tuple("sc", 4), std::make_tuple("tso", 4),
                      std::make_tuple("power", 3),
                      std::make_tuple("armv7", 3),
                      std::make_tuple("scc", 3),
                      std::make_tuple("sscc", 2),
                      std::make_tuple("c11", 3)));

TEST(AllProgsTest, TestSpaceDwarfsSynthesizedSuites)
{
    auto tso = mm::makeModel("tso");
    auto counts = countAllPrograms(*tso, 2, 4, CanonMode::Exact);
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synthesizeAll(*tso, opt);
    const Suite &u = suites.back();
    // Figure 13a: the set of all programs grows much faster than the
    // synthesized union suite.
    uint64_t all4 = counts[4];
    EXPECT_GT(all4, 20 * static_cast<uint64_t>(u.testsBySize.at(4)));
    EXPECT_GT(counts[3], counts[2]);
    EXPECT_GT(counts[4], counts[3]);
}

TEST(WwcSymmetryTest, PaperCanonEmitsTwoWwcVariantsExactEmitsOne)
{
    // Figure 14: run TSO causality at size 5 under both canonicalizer
    // modes; paper mode emits one extra test (the WWC mirror image).
    auto tso = mm::makeModel("tso");
    SynthOptions paper_opt;
    paper_opt.minSize = 5;
    paper_opt.maxSize = 5;
    paper_opt.canonMode = CanonMode::Paper;
    SynthOptions exact_opt = paper_opt;
    exact_opt.canonMode = CanonMode::Exact;

    Suite paper_suite = synthesizeAxiom(*tso, "causality", paper_opt);
    Suite exact_suite = synthesizeAxiom(*tso, "causality", exact_opt);
    EXPECT_GE(paper_suite.tests.size(), exact_suite.tests.size());
    // Collapsing paper-mode output with the exact canonicalizer must
    // yield the exact-mode suite: the difference is pure redundancy.
    EXPECT_EQ(canonKeys(paper_suite.tests), canonKeys(exact_suite.tests));
}

} // namespace
} // namespace lts::synth
// Appended: direct vs merged union-suite generation (footnote 4).
namespace lts::synth
{
namespace
{

TEST(UnionDirectTest, DirectQueryMatchesMergedUnion)
{
    for (const char *name : {"tso", "scc"}) {
        auto model = mm::makeModel(name);
        SynthOptions opt;
        opt.minSize = 2;
        opt.maxSize = 3;
        auto suites = synthesizeAll(*model, opt);
        Suite direct = synthesizeUnionDirect(*model, opt);

        std::set<std::string> merged_keys, direct_keys;
        for (const auto &t : suites.back().tests) {
            merged_keys.insert(litmus::staticSerialize(
                litmus::canonicalize(t, litmus::CanonMode::Exact)));
        }
        for (const auto &t : direct.tests) {
            direct_keys.insert(litmus::staticSerialize(
                litmus::canonicalize(t, litmus::CanonMode::Exact)));
        }
        EXPECT_EQ(direct_keys, merged_keys) << name;
    }
}

TEST(UnionDirectTest, DirectUnionTestsAuditAsMinimalForSomeAxiom)
{
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    Suite direct = synthesizeUnionDirect(*tso, opt);
    EXPECT_EQ(direct.tests.size(), 10u);
    for (const auto &t : direct.tests)
        EXPECT_FALSE(minimalAxioms(*tso, t).empty()) << t.name;
}

} // namespace
} // namespace lts::synth
