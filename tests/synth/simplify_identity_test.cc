/**
 * @file
 * Suite-equivalence tests for formula simplification and cross-shard
 * clause sharing: synthesized suites must be byte-identical with each
 * feature on or off, under both engines, and at any worker count —
 * simplification and sharing may only change search effort, never what
 * is emitted. This pins the determinism contract registry-wide, the
 * library-level counterpart of the CI bench-smoke digest assertions.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

/** Axiom names plus every test's serialization — no effort counters. */
std::string
suiteKey(const std::vector<Suite> &suites)
{
    std::string key;
    for (const Suite &suite : suites) {
        key += suite.model + "/" + suite.axiom + "\n";
        for (const auto &test : suite.tests)
            key += litmus::fullSerialize(test) + "\n";
    }
    return key;
}

std::string
run(const mm::Model &model, SynthOptions opt, bool simplify, bool share,
    bool incremental, int jobs)
{
    opt.simplify = simplify;
    opt.shareClauses = share;
    opt.incremental = incremental;
    opt.jobs = jobs;
    return suiteKey(synthesizeAll(model, opt));
}

void
checkModel(const std::string &name, int max_size)
{
    auto model = mm::makeModel(name);
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;

    // Reference: everything on, serial incremental (the default engine).
    std::string reference = run(*model, opt, true, true, true, 1);

    EXPECT_EQ(reference, run(*model, opt, false, false, true, 1))
        << name << ": simplify+sharing off changed the incremental suite";
    EXPECT_EQ(reference, run(*model, opt, true, true, false, 1))
        << name << ": from-scratch suite differs with simplify+sharing on";
    EXPECT_EQ(reference, run(*model, opt, false, false, false, 1))
        << name << ": from-scratch suite differs with simplify+sharing off";
    // Sharing only activates in the parallel from-scratch engine; cover
    // the on/off pair at jobs=4 where imports actually flow.
    EXPECT_EQ(reference, run(*model, opt, true, true, false, 4))
        << name << ": parallel sharing changed the suite";
    EXPECT_EQ(reference, run(*model, opt, true, false, false, 4))
        << name << ": parallel no-share suite differs";
    EXPECT_EQ(reference, run(*model, opt, false, true, false, 4))
        << name << ": share-without-simplify suite differs";
}

TEST(SimplifyIdentityTest, TsoSuitesIdenticalAcrossAllModes)
{
    checkModel("tso", 4);
}

TEST(SimplifyIdentityTest, ScSuitesIdenticalAcrossAllModes)
{
    checkModel("sc", 4);
}

TEST(SimplifyIdentityTest, RegistryWideSuitesIdenticalAcrossAllModes)
{
    // Every registered model at the largest size that keeps this a unit
    // test; TSO/SC run a size bigger above.
    for (const std::string &name : mm::modelNames())
        checkModel(name, 3);
}

TEST(SimplifyIdentityTest, SimplifyActuallyEliminatesVariables)
{
    // The identity tests pass trivially if the pass never installs;
    // pin that synthesis actually runs it and it actually bites.
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    SynthProgress progress;
    opt.progress = &progress;
    synthesizeAll(*tso, opt);
    EXPECT_GT(progress.eliminatedVars.load(), 0u);
}

TEST(SimplifyIdentityTest, SharingActuallyExchangesClauses)
{
    // Same guard for the clause bank: the parallel from-scratch engine
    // on a multi-axiom model must move at least one clause.
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    opt.incremental = false;
    opt.jobs = 4;
    SynthProgress progress;
    opt.progress = &progress;
    synthesizeAll(*tso, opt);
    EXPECT_GT(progress.exportedClauses.load(), 0u);
    EXPECT_GT(progress.importedClauses.load(), 0u);
}

} // namespace
} // namespace lts::synth
