/**
 * @file
 * Engine-equivalence tests: the incremental engine (shared solver per
 * size, axioms swept as retractable fact layers) must produce suites
 * byte-identical to the from-scratch engine (private solver per
 * (axiom, size) pair) — the incremental rewrite is a pure performance
 * change, never a semantic one.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

/** Everything observable about a suite vector except timings. */
std::string
serializeSuites(const std::vector<Suite> &suites)
{
    std::string s;
    for (const auto &suite : suites) {
        s += suite.model + "/" + suite.axiom + " raw=" +
             std::to_string(suite.rawInstances) +
             (suite.truncated ? " truncated" : "") + "\n";
        for (auto [size, count] : suite.testsBySize)
            s += "  n=" + std::to_string(size) + ": " +
                 std::to_string(count) + "\n";
        for (auto [size, count] : suite.instancesBySize)
            s += "  models@" + std::to_string(size) + ": " +
                 std::to_string(count) + "\n";
        for (const auto &t : suite.tests)
            s += t.name + "\n" + litmus::fullSerialize(t) + "\n";
    }
    return s;
}

void
expectEnginesAgree(const std::string &model_name, int max_size,
                   const SynthOptions &base)
{
    auto model = mm::makeModel(model_name);
    SynthOptions inc = base;
    inc.maxSize = max_size;
    inc.incremental = true;
    SynthOptions scratch = inc;
    scratch.incremental = false;

    auto a = synthesizeAll(*model, inc);
    auto b = synthesizeAll(*model, scratch);
    EXPECT_EQ(serializeSuites(a), serializeSuites(b)) << model_name;
}

TEST(IncrementalEquivalenceTest, TsoMatchesFromScratchUpToSizeFour)
{
    expectEnginesAgree("tso", 4, {});
}

TEST(IncrementalEquivalenceTest, SccMatchesFromScratchUpToSizeFour)
{
    expectEnginesAgree("scc", 4, {});
}

TEST(IncrementalEquivalenceTest, EveryModelMatchesFromScratch)
{
    // The rest of the registry (tso and scc have dedicated tests above):
    // sizes 2-4 for the cheap models, 2-3 for the expensive ones so
    // tier-1 stays fast; the fig benches cover the large sizes.
    for (const auto &name : mm::modelNames()) {
        if (name == "tso" || name == "scc")
            continue;
        bool cheap = name == "sc" || name == "c11";
        expectEnginesAgree(name, cheap ? 4 : 3, {});
    }
}

TEST(IncrementalEquivalenceTest, EnginesAgreeUnderParallelJobs)
{
    SynthOptions opt;
    opt.jobs = 4;
    expectEnginesAgree("tso", 4, opt);
}

TEST(IncrementalEquivalenceTest, SingleAxiomAndUnionDirectAgree)
{
    auto tso = mm::makeModel("tso");
    SynthOptions inc;
    inc.maxSize = 4;
    inc.incremental = true;
    SynthOptions scratch = inc;
    scratch.incremental = false;

    Suite a = synthesizeAxiom(*tso, "causality", inc);
    Suite b = synthesizeAxiom(*tso, "causality", scratch);
    EXPECT_EQ(serializeSuites({a}), serializeSuites({b}));

    Suite ua = synthesizeUnionDirect(*tso, inc);
    Suite ub = synthesizeUnionDirect(*tso, scratch);
    EXPECT_EQ(serializeSuites({ua}), serializeSuites({ub}));
}

} // namespace
} // namespace lts::synth
