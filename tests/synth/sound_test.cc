/**
 * @file
 * Tests for the sound (Figure 5b) minimality engine — the paper's
 * "future work" resolution of the outcome-vs-execution
 * under-approximation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "litmus/print.hh"
#include "mm/models.hh"
#include "mm/registry.hh"
#include "synth/minimality.hh"
#include "synth/sound.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

LitmusTest
mp(MemOrder first_store, MemOrder second_load)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x", first_store);
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x", second_load);
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP");
}

LitmusTest
sbFenceSc()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, MemOrder::SeqCst);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+FenceSCs");
}

TEST(ApplyRelaxationsTest, RICoversEveryEvent)
{
    auto tso = mm::makeModel("tso");
    LitmusTest t = mp(MemOrder::Plain, MemOrder::Plain);
    for (auto &e : t.events)
        e.order = MemOrder::Plain;
    auto relaxed = applyRelaxations(*tso, t);
    int ri = 0;
    for (const auto &r : relaxed) {
        if (r.relaxation == "RI") {
            ri++;
            EXPECT_EQ(r.test.size(), t.size() - 1);
            EXPECT_EQ(r.test.validate(), "");
            EXPECT_EQ(r.eventMap[r.event], -1);
        }
    }
    EXPECT_EQ(ri, 4);
}

TEST(ApplyRelaxationsTest, RIRemovingWholeThreadRenumbers)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int t1 = b.newThread();
    b.read(t1, "x");
    int t2 = b.newThread();
    b.read(t2, "x");
    LitmusTest t = b.build("three");
    auto relaxed = applyRelaxations(*tso, t);
    // Removing event 0 dissolves thread 0 entirely.
    for (const auto &r : relaxed) {
        if (r.relaxation == "RI" && r.event == 0) {
            EXPECT_EQ(r.test.numThreads, 2);
            EXPECT_EQ(r.test.events[0].tid, 0);
            EXPECT_EQ(r.test.events[1].tid, 1);
        }
    }
}

TEST(ApplyRelaxationsTest, DemoteChangesAnnotation)
{
    auto scc = mm::makeModel("scc");
    LitmusTest t = mp(MemOrder::Plain, MemOrder::Plain);
    auto relaxed = applyRelaxations(*scc, t);
    bool saw_acq = false, saw_rel = false;
    for (const auto &r : relaxed) {
        if (r.relaxation == "DMO(acq->rlx)") {
            saw_acq = true;
            EXPECT_EQ(r.event, 2);
            EXPECT_EQ(r.test.events[2].order, MemOrder::Plain);
            EXPECT_EQ(r.test.events[1].order, MemOrder::Release);
        }
        if (r.relaxation == "DMO(rel->rlx)") {
            saw_rel = true;
            EXPECT_EQ(r.event, 1);
            EXPECT_EQ(r.test.events[1].order, MemOrder::Plain);
        }
    }
    EXPECT_TRUE(saw_acq);
    EXPECT_TRUE(saw_rel);
}

TEST(ApplyRelaxationsTest, FenceDemotionFollowsChain)
{
    auto scc = mm::makeModel("scc");
    LitmusTest sb = sbFenceSc();
    auto relaxed = applyRelaxations(*scc, sb);
    int df_sc = 0, df_ar = 0;
    for (const auto &r : relaxed) {
        if (r.relaxation == "DF(sc->ar)") {
            df_sc++;
            EXPECT_EQ(r.test.events[r.event].order, MemOrder::AcqRel);
        }
        if (r.relaxation == "DF(ar->rlx)")
            df_ar++;
    }
    EXPECT_EQ(df_sc, 2); // both FenceSCs
    EXPECT_EQ(df_ar, 0); // no AcqRel fences in the original test
}

TEST(ApplyRelaxationsTest, RdAndDrmwApplyWhereMeaningful)
{
    auto scc = mm::makeModel("scc");
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    int r2 = b.read(t0, "y");
    b.ctrlDepend(r2, r2 + 1);
    b.write(t0, "z");
    LitmusTest t = b.build("rmw+dep");
    auto relaxed = applyRelaxations(*scc, t);
    int rd = 0, drmw = 0;
    for (const auto &x : relaxed) {
        if (x.relaxation == "RD") {
            rd++;
            EXPECT_TRUE(x.test.ctrlDep.none());
        }
        if (x.relaxation == "DRMW") {
            drmw++;
            EXPECT_TRUE(x.test.rmw.none());
        }
    }
    EXPECT_EQ(rd, 1);   // only the read with an outgoing dep
    EXPECT_EQ(drmw, 1); // only the paired read
}

TEST(SoundCriterionTest, AgreesWithFigure5cOnTso)
{
    // TSO has no auxiliary relations beyond co, so (per the paper's
    // argument that co-ambiguity needs three same-location writes) the
    // practical and sound criteria coincide at small sizes.
    auto tso = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    for (const auto &axiom : {"sc_per_loc", "causality"}) {
        Suite suite = synthesizeAxiom(*tso, axiom, opt);
        for (const auto &t : suite.tests) {
            auto fast = minimalAxioms(*tso, t);
            auto sound = soundMinimalAxioms(*tso, t);
            EXPECT_TRUE(std::find(sound.begin(), sound.end(), axiom) !=
                        sound.end())
                << litmus::toString(t);
            // Soundness: 5b accepts everything 5c accepts.
            for (const auto &a : fast) {
                EXPECT_TRUE(std::find(sound.begin(), sound.end(), a) !=
                            sound.end())
                    << a << "\n" << litmus::toString(t);
            }
        }
    }
}

TEST(SoundCriterionTest, RescuesSbWithoutTheLoneScWorkaround)
{
    // The headline: under strict SCC (no Figure 19 workaround) the
    // Figure 5c criterion wrongly rejects SB+FenceSCs; the sound
    // exists-forall criterion accepts it with no workaround at all.
    auto strict = mm::makeSccStrict();
    LitmusTest sb = sbFenceSc();

    auto fast = minimalAxioms(*strict, sb);
    EXPECT_TRUE(std::find(fast.begin(), fast.end(), "causality") ==
                fast.end())
        << "Figure 18's false negative did not manifest";

    auto sound = soundMinimalAxioms(*strict, sb);
    EXPECT_TRUE(std::find(sound.begin(), sound.end(), "causality") !=
                sound.end())
        << "sound criterion failed to rescue SB";
}

TEST(SoundCriterionTest, StillRejectsOverSynchronizedTests)
{
    // Figure 2's MP with extra release/acquire must stay non-minimal
    // under the sound semantics too: the extra annotation can be demoted
    // without unlocking the outcome, and that is a fact about the test,
    // not about the criterion phrasing.
    auto scc = mm::makeModel("scc");
    LitmusTest strong = mp(MemOrder::Release, MemOrder::Acquire);
    EXPECT_TRUE(soundMinimalAxioms(*scc, strong).empty());

    LitmusTest minimal = mp(MemOrder::Plain, MemOrder::Plain);
    auto sound = soundMinimalAxioms(*scc, minimal);
    EXPECT_TRUE(std::find(sound.begin(), sound.end(), "causality") !=
                sound.end());
}

TEST(SoundCriterionTest, RejectsAllowedOutcomes)
{
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    LitmusTest sb = b.build("SB");
    EXPECT_TRUE(soundMinimalAxioms(*tso, sb).empty());
}

TEST(OutcomeObservableTest, Figure3RemoveCases)
{
    // Figure 3: applying RI to each instruction of MP leaves the
    // remaining outcome observable.
    auto tso = mm::makeModel("tso");
    LitmusTest t = mp(MemOrder::Plain, MemOrder::Plain);
    for (auto &e : t.events)
        e.order = MemOrder::Plain;
    int checked = 0;
    for (const auto &relaxed : applyRelaxations(*tso, t)) {
        if (relaxed.relaxation != "RI")
            continue;
        EXPECT_TRUE(outcomeObservable(*tso, t, relaxed))
            << "victim " << relaxed.event;
        checked++;
    }
    EXPECT_EQ(checked, 4);
}

TEST(OutcomeObservableTest, UnnecessaryFenceRemovalIsNotObservable)
{
    // MP+fence: removing the W/W pair's store keeps things observable,
    // but removing the *fence* leaves the outcome still forbidden, so
    // it is NOT observable — exactly why the test fails minimality.
    auto tso = mm::makeModel("tso");
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    int fence = b.fence(t1, MemOrder::Plain);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    LitmusTest t = b.build("MP+fence");
    for (const auto &relaxed : applyRelaxations(*tso, t)) {
        if (relaxed.relaxation == "RI" && relaxed.event == fence) {
            EXPECT_FALSE(outcomeObservable(*tso, t, relaxed));
        }
    }
}

} // namespace
} // namespace lts::synth
