/**
 * @file
 * Proof-logging contract tests for the synthesis engines: turning
 * --proof on must not change a single suite byte (it is an engine knob,
 * invisible to the options digest), every per-shard proof the engines
 * emit must pass the independent DRAT checker, and a dumped DIMACS
 * snapshot of an Unsat shard must actually be unsatisfiable when
 * re-solved from the file.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "sat/dimacs.hh"
#include "sat/drat.hh"
#include "sat/solver.hh"
#include "synth/options.hh"
#include "synth/service.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{
namespace
{

namespace fs = std::filesystem;

std::string
suiteKey(const std::vector<Suite> &suites)
{
    std::string key;
    for (const Suite &suite : suites) {
        key += suite.model + "/" + suite.axiom + "\n";
        for (const auto &test : suite.tests)
            key += litmus::fullSerialize(test) + "\n";
    }
    return key;
}

class ProofTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir = fs::path(testing::TempDir()) /
              ("lts-proof-" +
               std::string(testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name()));
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    /** Check every .drat under dir; returns how many were verified. */
    size_t checkAllProofs()
    {
        size_t checked = 0;
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() != ".drat")
                continue;
            sat::DratCheckResult res =
                sat::checkDratFile(entry.path().string());
            EXPECT_TRUE(res.ok)
                << entry.path().filename().string() << ": " << res.error;
            EXPECT_GT(res.conclusions, 0u);
            checked++;
        }
        return checked;
    }

    fs::path dir;
};

TEST_F(ProofTest, SuiteBytesIdenticalWithProofOnBothEngines)
{
    auto model = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 3;
    std::string reference = suiteKey(synthesizeAll(*model, opt));

    for (bool incremental : {true, false}) {
        SynthOptions proved = opt;
        proved.incremental = incremental;
        proved.proofDir = (dir / (incremental ? "inc" : "scratch")).string();
        fs::create_directories(proved.proofDir);
        EXPECT_EQ(reference, suiteKey(synthesizeAll(*model, proved)))
            << "proof logging changed the suite (incremental="
            << incremental << ")";
    }
}

TEST_F(ProofTest, IncrementalEngineProofsCheck)
{
    auto model = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 3;
    opt.proofDir = dir.string();
    synthesizeAll(*model, opt);
    // One proof per size, each concluding every axiom's Unsat.
    EXPECT_EQ(checkAllProofs(), 2u);
}

TEST_F(ProofTest, FromScratchSharedClauseProofsCheck)
{
    // The sharing path re-justifies imports with a local RUP check
    // before logging them; the proofs must stay self-contained.
    auto model = mm::makeModel("tso");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 3;
    opt.incremental = false;
    opt.jobs = 4;
    opt.shareClauses = true;
    opt.proofText = true;
    opt.proofDir = dir.string();
    synthesizeAll(*model, opt);
    // One proof per (axiom, size) shard.
    EXPECT_EQ(checkAllProofs(),
              2 * mm::makeModel("tso")->axioms().size());
}

TEST_F(ProofTest, ProofKnobsAreEngineKnobs)
{
    SynthOptions plain;
    SynthOptions proved = plain;
    proved.proofDir = dir.string();
    proved.proofText = true;
    proved.dumpDimacsDir = dir.string();
    EXPECT_EQ(optionsDigest(plain), optionsDigest(proved));
}

TEST_F(ProofTest, DumpedDimacsIsUnsat)
{
    auto model = mm::makeModel("sc");
    SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 2;
    opt.dumpDimacsDir = dir.string();
    synthesizeAll(*model, opt);

    size_t checked = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".cnf")
            continue;
        std::ifstream in(entry.path());
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        sat::Cnf cnf = sat::parseDimacsString(data);
        sat::Solver solver;
        for (int i = 0; i < cnf.numVars; i++)
            solver.newVar();
        bool consistent = true;
        for (const auto &clause : cnf.clauses)
            consistent = solver.addClause(clause) && consistent;
        EXPECT_TRUE(!consistent ||
                    solver.solve() == sat::SolveResult::Unsat)
            << entry.path().filename().string()
            << ": dumped shard snapshot is satisfiable";
        checked++;
    }
    EXPECT_GT(checked, 0u);
}

} // namespace
} // namespace lts::synth
