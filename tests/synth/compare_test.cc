/**
 * @file
 * Subsumption (subtest) analysis tests — the machinery behind Table 4
 * and Figure 10.
 */

#include <gtest/gtest.h>

#include "synth/compare.hh"

namespace lts::synth
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

LitmusTest
corw()
{
    TestBuilder b;
    int t0 = b.newThread();
    int ld = b.read(t0, "x");
    int st1 = b.write(t0, "x");
    int t1 = b.newThread();
    int st2 = b.write(t1, "x");
    b.readsFrom(st2, ld);
    b.coOrder(st1, st2);
    return b.build("CoRW");
}

LitmusTest
n5()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w1 = b.write(t0, "x");
    int t1 = b.newThread();
    int r1 = b.read(t1, "x");
    int w2 = b.write(t1, "x");
    b.readsFrom(w2, r0);
    b.readsFrom(w1, r1);
    b.coOrder(w1, w2);
    return b.build("n5/CoLB");
}

LitmusTest
mp(bool with_fence)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    if (with_fence)
        b.fence(t1, MemOrder::Plain);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build(with_fence ? "MP+fence" : "MP");
}

TEST(SubtestTest, Figure10N5ContainsCoRW)
{
    EXPECT_TRUE(isSubtest(corw(), n5()));
    EXPECT_FALSE(isSubtest(n5(), corw()));
}

TEST(SubtestTest, EveryTestContainsItself)
{
    EXPECT_TRUE(isSubtest(corw(), corw()));
    EXPECT_TRUE(isSubtest(mp(false), mp(false)));
}

TEST(SubtestTest, MpPlusFenceContainsMp)
{
    EXPECT_TRUE(isSubtest(mp(false), mp(true)));
    EXPECT_FALSE(isSubtest(mp(true), mp(false)));
}

TEST(SubtestTest, LocationStructureMustMatch)
{
    // Two reads of one location do not embed into reads of two
    // different locations.
    TestBuilder a;
    int t0 = a.newThread();
    a.read(t0, "x");
    a.read(t0, "x");
    LitmusTest same = a.build("rr-same");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.read(u0, "x");
    bb.read(u0, "y");
    LitmusTest diff = bb.build("rr-diff");

    EXPECT_FALSE(isSubtest(same, diff));
    EXPECT_FALSE(isSubtest(diff, same));
}

TEST(SubtestTest, OrderMattersWithinThread)
{
    TestBuilder a;
    int t0 = a.newThread();
    a.read(t0, "x");
    a.write(t0, "y");
    LitmusTest rw = a.build("rw");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.write(u0, "y");
    bb.read(u0, "x");
    LitmusTest wr = bb.build("wr");

    EXPECT_FALSE(isSubtest(rw, wr));
}

TEST(SubtestTest, StrongerAnnotationsSubsumeWeaker)
{
    // A release write embeds a plain write requirement, not vice versa.
    TestBuilder a;
    int t0 = a.newThread();
    a.write(t0, "x");
    LitmusTest plain = a.build("w");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.write(u0, "x", MemOrder::Release);
    LitmusTest rel = bb.build("w-rel");

    EXPECT_TRUE(isSubtest(plain, rel));
    EXPECT_FALSE(isSubtest(rel, plain));
}

TEST(SubtestTest, DependenciesMustBePresentInSuper)
{
    TestBuilder a;
    int t0 = a.newThread();
    int r = a.read(t0, "x");
    int w = a.write(t0, "y");
    a.dataDepend(r, w);
    LitmusTest with_dep = a.build("dep");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.read(u0, "x");
    bb.write(u0, "y");
    LitmusTest without = bb.build("nodep");

    EXPECT_FALSE(isSubtest(with_dep, without));
    EXPECT_TRUE(isSubtest(without, with_dep)); // super may be stronger
}

TEST(SubtestTest, ThreadMappingIsInjective)
{
    // Two single-write threads cannot both map onto one super thread.
    TestBuilder a;
    int t0 = a.newThread();
    a.write(t0, "x");
    int t1 = a.newThread();
    a.write(t1, "x");
    LitmusTest two = a.build("two-threads");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.write(u0, "x");
    bb.write(u0, "x");
    LitmusTest one = bb.build("one-thread");

    EXPECT_FALSE(isSubtest(two, one));
}

TEST(SubtestTest, CrossThreadEmbeddingFindsPermutation)
{
    // The sub's threads appear in the super in the opposite order.
    TestBuilder a;
    int t0 = a.newThread();
    a.write(t0, "x");
    int t1 = a.newThread();
    a.read(t1, "x");
    LitmusTest sub = a.build("wr-2t");

    TestBuilder bb;
    int u0 = bb.newThread();
    bb.read(u0, "y");
    bb.read(u0, "x"); // extra event
    int u1 = bb.newThread();
    bb.write(u1, "y");
    LitmusTest super = bb.build("super");
    // sub's write->read on one location maps to super's y accesses with
    // threads swapped.
    EXPECT_TRUE(isSubtest(sub, super));
}

TEST(CompareSuitesTest, ClassifiesInSuiteAndSubsumed)
{
    std::vector<LitmusTest> suite = {corw(), mp(false)};
    std::vector<LitmusTest> baseline = {n5(), mp(false), mp(true)};
    auto results = compareSuites(baseline, suite);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].baselineName, "n5/CoLB");
    EXPECT_FALSE(results[0].inSuite);
    EXPECT_TRUE(results[0].subsumed); // contains CoRW

    EXPECT_TRUE(results[1].inSuite);

    EXPECT_FALSE(results[2].inSuite);
    EXPECT_TRUE(results[2].subsumed); // MP+fence contains MP
}

} // namespace
} // namespace lts::synth
