/**
 * @file
 * Tests for the DIMACS reader/writer, including a round trip through the
 * solver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hh"
#include "sat/solver.hh"

namespace lts::sat
{
namespace
{

TEST(DimacsTest, ParseSimple)
{
    Cnf cnf = parseDimacsString("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.numVars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    ASSERT_EQ(cnf.clauses[0].size(), 2u);
    EXPECT_EQ(cnf.clauses[0][0], Lit::pos(0));
    EXPECT_EQ(cnf.clauses[0][1], Lit::neg(1));
}

TEST(DimacsTest, ParseMultiLineClause)
{
    Cnf cnf = parseDimacsString("p cnf 2 1\n1\n2 0\n");
    ASSERT_EQ(cnf.clauses.size(), 1u);
    EXPECT_EQ(cnf.clauses[0].size(), 2u);
}

TEST(DimacsTest, RejectsBadHeader)
{
    EXPECT_THROW(parseDimacsString("p sat 3 2\n1 0\n"), std::runtime_error);
}

TEST(DimacsTest, RejectsOutOfRangeLiteral)
{
    EXPECT_THROW(parseDimacsString("p cnf 2 1\n3 0\n"), std::runtime_error);
}

TEST(DimacsTest, RejectsUnterminatedClause)
{
    EXPECT_THROW(parseDimacsString("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(DimacsTest, RejectsClauseCountMismatch)
{
    EXPECT_THROW(parseDimacsString("p cnf 2 2\n1 0\n"), std::runtime_error);
}

TEST(DimacsTest, WriteThenParseRoundTrips)
{
    Cnf cnf;
    cnf.numVars = 4;
    cnf.clauses.push_back({Lit::pos(0), Lit::neg(3)});
    cnf.clauses.push_back({Lit::neg(1), Lit::pos(2), Lit::pos(3)});

    std::ostringstream out;
    writeDimacs(out, cnf);
    Cnf parsed = parseDimacsString(out.str());
    EXPECT_EQ(parsed.numVars, cnf.numVars);
    ASSERT_EQ(parsed.clauses.size(), cnf.clauses.size());
    for (size_t i = 0; i < cnf.clauses.size(); i++)
        EXPECT_EQ(parsed.clauses[i], cnf.clauses[i]);
}

TEST(DimacsTest, LiveClausesRoundTripThroughDimacs)
{
    // Snapshot a solver holding permanent, grouped, and simplified
    // state, round-trip it through DIMACS, and check the reloaded
    // formula behaves identically — including the group-selector guard
    // literal, which liveClauses() exposes as an ordinary variable.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), x = s.newVar();
    s.setFrozen(a);
    s.setFrozen(b);
    s.addClause({Lit::neg(x), Lit::pos(a)});
    s.addClause({Lit::pos(x), Lit::neg(a)});
    Group g = s.newGroup();
    s.addClause(g, {Lit::neg(a), Lit::pos(b)});
    ASSERT_TRUE(s.simplify());

    Cnf cnf;
    cnf.numVars = s.numVars();
    cnf.clauses = s.liveClauses();
    std::ostringstream out;
    writeDimacs(out, cnf);
    Cnf parsed = parseDimacsString(out.str());
    EXPECT_EQ(parsed.numVars, cnf.numVars);
    ASSERT_EQ(parsed.clauses, cnf.clauses);

    Solver reloaded;
    for (int i = 0; i < parsed.numVars; i++)
        reloaded.newVar();
    for (const auto &clause : parsed.clauses)
        ASSERT_TRUE(reloaded.addClause(clause));

    // The guard literal of the grouped clause survives the round trip:
    // asserting the selector enforces the layer in the reloaded solver,
    // and leaving it free does not.
    Lit guard = s.groupLit(g);
    for (const auto &assumptions : std::vector<std::vector<Lit>>{
             {guard, Lit::pos(a), Lit::neg(b)},
             {Lit::pos(a), Lit::neg(b)},
             {guard, Lit::pos(a), Lit::pos(b)}}) {
        EXPECT_EQ(reloaded.solve(assumptions), s.solve(assumptions));
    }
}

TEST(DimacsTest, SolveParsedFormula)
{
    // (a | b) & (~a | b) & (~b | c) forces b and c true.
    Cnf cnf = parseDimacsString("p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n");
    Solver s;
    for (int i = 0; i < cnf.numVars; i++)
        s.newVar();
    for (const auto &clause : cnf.clauses)
        ASSERT_TRUE(s.addClause(clause));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(Var(1)));
    EXPECT_TRUE(s.modelValue(Var(2)));
}

} // namespace
} // namespace lts::sat
