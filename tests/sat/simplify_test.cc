/**
 * @file
 * Tests for the SatELite-style preprocessing pass (Solver::simplify):
 * the individual simplifications (subsumption, self-subsuming
 * resolution, bounded variable elimination), the frozen-variable
 * protocol, model reconstruction for eliminated variables, interaction
 * with activation groups, and — the property everything downstream
 * depends on — that simplification never changes the set of models over
 * the frozen variables. The equivalence tests enumerate models by
 * blocking, exactly like the synthesizer's inner loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "sat/solver.hh"

namespace lts::sat
{
namespace
{

/** Enumerate all models projected onto @p vars, via blocking clauses. */
std::set<std::vector<bool>>
enumerateModels(Solver &s, const std::vector<Var> &vars)
{
    std::set<std::vector<bool>> models;
    while (s.solve() == SolveResult::Sat) {
        EXPECT_TRUE(s.checkModel());
        std::vector<bool> m;
        Clause blocking;
        for (Var v : vars) {
            m.push_back(s.modelValue(v));
            blocking.push_back(Lit(v, s.modelValue(v)));
        }
        EXPECT_TRUE(models.insert(m).second) << "duplicate model";
        if (!s.addClause(blocking))
            break;
    }
    return models;
}

TEST(SimplifyTest, SubsumptionDeletesSupersetClause)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    for (Var v : {a, b, c})
        s.setFrozen(v);
    s.addClause({Lit::pos(a), Lit::pos(b)});
    s.addClause({Lit::pos(a), Lit::pos(b), Lit::pos(c)});
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().subsumedClauses, 1u);
    EXPECT_EQ(s.numClauses(), 1);
}

TEST(SimplifyTest, SelfSubsumptionStrengthensClause)
{
    // {a, b} with {a, ~b, c}: resolving on b gives {a, c} which
    // subsumes {a, ~b, c} — so the latter is strengthened to {a, c}.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    for (Var v : {a, b, c})
        s.setFrozen(v);
    s.addClause({Lit::pos(a), Lit::pos(b)});
    s.addClause({Lit::pos(a), Lit::neg(b), Lit::pos(c)});
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().strengthenedLits, 1u);
    // The strengthened formula still has exactly the models of the
    // original: enumerate and compare against a pristine solver.
    Solver plain;
    for (int i = 0; i < 3; i++)
        plain.newVar();
    plain.addClause({Lit::pos(a), Lit::pos(b)});
    plain.addClause({Lit::pos(a), Lit::neg(b), Lit::pos(c)});
    EXPECT_EQ(enumerateModels(s, {a, b, c}),
              enumerateModels(plain, {a, b, c}));
}

TEST(SimplifyTest, EliminatesTseitinVariable)
{
    // x <-> a & b with a, b frozen: x is pure plumbing and must go.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), x = s.newVar();
    s.setFrozen(a);
    s.setFrozen(b);
    s.addClause({Lit::neg(x), Lit::pos(a)});
    s.addClause({Lit::neg(x), Lit::pos(b)});
    s.addClause({Lit::pos(x), Lit::neg(a), Lit::neg(b)});
    ASSERT_TRUE(s.simplify());
    EXPECT_TRUE(s.isEliminated(x));
    EXPECT_EQ(s.stats().eliminatedVars, 1u);

    // Reconstruction keeps modelValue() total and functionally correct:
    // in every model x must equal a & b, because checkModel() verifies
    // the archived defining clauses too.
    int models = 0;
    while (s.solve() == SolveResult::Sat) {
        ASSERT_TRUE(s.checkModel());
        EXPECT_EQ(s.modelValue(x), s.modelValue(a) && s.modelValue(b));
        Clause blocking = {Lit(a, s.modelValue(a)),
                           Lit(b, s.modelValue(b))};
        models++;
        if (!s.addClause(blocking))
            break;
    }
    EXPECT_EQ(models, 4);
}

TEST(SimplifyTest, FrozenVariablesAreNeverEliminated)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), x = s.newVar();
    s.setFrozen(a);
    s.setFrozen(b);
    s.setFrozen(x); // would be eliminable, but the caller wants it
    s.addClause({Lit::neg(x), Lit::pos(a)});
    s.addClause({Lit::neg(x), Lit::pos(b)});
    s.addClause({Lit::pos(x), Lit::neg(a), Lit::neg(b)});
    ASSERT_TRUE(s.simplify());
    EXPECT_FALSE(s.isEliminated(x));
    EXPECT_EQ(s.stats().eliminatedVars, 0u);
}

TEST(SimplifyTest, DetectsRootUnsat)
{
    // BVE on the only unfrozen variable produces the empty clause.
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.setFrozen(b);
    s.addClause({Lit::pos(a), Lit::pos(b)});
    s.addClause({Lit::pos(a), Lit::neg(b)});
    s.addClause({Lit::neg(a), Lit::pos(b)});
    s.addClause({Lit::neg(a), Lit::neg(b)});
    EXPECT_FALSE(s.simplify());
    EXPECT_TRUE(s.inConflict());
}

TEST(SimplifyTest, GroupedClausesAndTheirVariablesAreUntouched)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), x = s.newVar();
    s.setFrozen(a);
    s.setFrozen(b);
    // x would be eliminable from the permanent clauses alone, but a
    // grouped clause mentions it, so elimination must skip it.
    s.addClause({Lit::neg(x), Lit::pos(a)});
    s.addClause({Lit::pos(x), Lit::neg(a)});
    Group g = s.newGroup();
    s.addClause(g, {Lit::neg(x), Lit::pos(b)});
    ASSERT_TRUE(s.simplify());
    EXPECT_FALSE(s.isEliminated(x));

    // The retractable layer still binds only under its activation
    // literal: with the layer, x forces b; without it, b is free.
    ASSERT_EQ(s.solve({s.groupLit(g), Lit::pos(x), Lit::neg(b)}),
              SolveResult::Unsat);
    ASSERT_EQ(s.solve({Lit::pos(x), Lit::neg(b)}), SolveResult::Sat);
    s.release(g);
    ASSERT_EQ(s.solve({Lit::pos(x), Lit::neg(b)}), SolveResult::Sat);
}

TEST(SimplifyTest, AssumptionsOnFrozenVarsAfterElimination)
{
    // A chain of Tseitin ands: y = a&b, z = y&c. Only the inputs are
    // frozen; both internals disappear, yet assumption-driven queries
    // over the inputs behave exactly as before.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    Var y = s.newVar(), z = s.newVar();
    for (Var v : {a, b, c})
        s.setFrozen(v);
    s.addClause({Lit::neg(y), Lit::pos(a)});
    s.addClause({Lit::neg(y), Lit::pos(b)});
    s.addClause({Lit::pos(y), Lit::neg(a), Lit::neg(b)});
    s.addClause({Lit::neg(z), Lit::pos(y)});
    s.addClause({Lit::neg(z), Lit::pos(c)});
    s.addClause({Lit::pos(z), Lit::neg(y), Lit::neg(c)});
    ASSERT_TRUE(s.simplify());
    EXPECT_TRUE(s.isEliminated(y));
    EXPECT_TRUE(s.isEliminated(z));

    // Reconstruction must assign both internals their functional value
    // under every input assumption cube.
    for (int cube = 0; cube < 8; cube++) {
        std::vector<Lit> assumptions = {Lit(a, !(cube & 1)),
                                        Lit(b, !(cube & 2)),
                                        Lit(c, !(cube & 4))};
        ASSERT_EQ(s.solve(assumptions), SolveResult::Sat);
        EXPECT_TRUE(s.checkModel());
        EXPECT_EQ(s.modelValue(y), s.modelValue(a) && s.modelValue(b));
        EXPECT_EQ(s.modelValue(z), s.modelValue(y) && s.modelValue(c));
    }
}

TEST(SimplifyTest, RandomFormulasKeepTheirProjectedModelSets)
{
    // The contract the synthesizer relies on: over the frozen
    // variables, simplification changes nothing. Random 3-CNFs, a
    // random half of the variables frozen; compare full enumeration
    // against an untouched solver.
    std::mt19937 rng(7);
    for (int round = 0; round < 40; round++) {
        const int num_vars = 8;
        const int num_clauses = 18;
        std::vector<Clause> clauses;
        for (int i = 0; i < num_clauses; i++) {
            Clause c;
            for (int l = 0; l < 3; l++)
                c.push_back(Lit(static_cast<Var>(rng() % num_vars),
                                rng() & 1));
            clauses.push_back(c);
        }
        std::vector<Var> frozen;
        Solver simplified, plain;
        for (int v = 0; v < num_vars; v++) {
            simplified.newVar();
            plain.newVar();
            if (rng() & 1) {
                simplified.setFrozen(v);
                frozen.push_back(v);
            }
        }
        bool ok_simplified = true, ok_plain = true;
        for (const Clause &c : clauses) {
            ok_simplified = simplified.addClause(c) && ok_simplified;
            ok_plain = plain.addClause(c) && ok_plain;
        }
        EXPECT_EQ(ok_simplified, ok_plain);
        if (!ok_plain)
            continue;
        if (!simplified.simplify()) {
            // Simplification proved UNSAT; the plain solver must agree.
            EXPECT_EQ(plain.solve(), SolveResult::Unsat) << "round "
                                                         << round;
            continue;
        }
        EXPECT_EQ(enumerateModels(simplified, frozen),
                  enumerateModels(plain, frozen))
            << "round " << round;
    }
}

TEST(SimplifyTest, IsDeterministicAcrossIdenticalSolvers)
{
    // Clause sharing and suite byte-identity both require identical
    // solvers to simplify identically; compare the full live clause
    // lists of two independently simplified copies.
    auto build = [](Solver &s) {
        std::mt19937 rng(11);
        for (int v = 0; v < 12; v++) {
            s.newVar();
            if (v < 6)
                s.setFrozen(v);
        }
        for (int i = 0; i < 30; i++) {
            Clause c;
            for (int l = 0; l < 3; l++)
                c.push_back(Lit(static_cast<Var>(rng() % 12), rng() & 1));
            s.addClause(c);
        }
        ASSERT_TRUE(s.simplify());
    };
    Solver s1, s2;
    build(s1);
    build(s2);
    auto c1 = s1.liveClauses();
    auto c2 = s2.liveClauses();
    ASSERT_EQ(c1.size(), c2.size());
    for (size_t i = 0; i < c1.size(); i++)
        EXPECT_EQ(c1[i], c2[i]) << "clause " << i;
    for (int v = 0; v < 12; v++)
        EXPECT_EQ(s1.isEliminated(v), s2.isEliminated(v)) << "var " << v;
}

TEST(SimplifyTest, ConfigDisablesIndividualPasses)
{
    auto build = [](Solver &s) {
        Var a = s.newVar(), b = s.newVar(), x = s.newVar();
        s.setFrozen(a);
        s.setFrozen(b);
        s.addClause({Lit::pos(a), Lit::pos(b)});
        s.addClause({Lit::pos(a), Lit::pos(b), Lit::neg(x)});
        s.addClause({Lit::pos(x), Lit::pos(a)});
        s.addClause({Lit::neg(x), Lit::pos(b)});
    };
    Solver no_subsumption;
    build(no_subsumption);
    SimplifyConfig cfg;
    cfg.subsumption = false;
    ASSERT_TRUE(no_subsumption.simplify(cfg));
    EXPECT_EQ(no_subsumption.stats().subsumedClauses, 0u);

    Solver no_elim;
    build(no_elim);
    cfg = SimplifyConfig();
    cfg.varElim = false;
    ASSERT_TRUE(no_elim.simplify(cfg));
    EXPECT_EQ(no_elim.stats().eliminatedVars, 0u);
}

} // namespace
} // namespace lts::sat
