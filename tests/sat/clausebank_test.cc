/**
 * @file
 * Tests for the shared learnt-clause bank: the publish/fetch protocol
 * (quality filter, deduplication, producer skip), end-to-end solver
 * exchange through Solver::connectBank, the export-poisoning safety
 * net, and a multi-threaded stress test that the CI thread-sanitizer
 * job runs to pin down the locking discipline.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sat/clausebank.hh"
#include "sat/solver.hh"

namespace lts::sat
{
namespace
{

void
addPigeonhole(Solver &s, int holes)
{
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; p++) {
        for (int h = 0; h < holes; h++)
            at[p][h] = s.newVar();
    }
    for (int p = 0; p < pigeons; p++) {
        Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(Lit::pos(at[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < holes; h++) {
        for (int p1 = 0; p1 < pigeons; p1++) {
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                s.addClause({Lit::neg(at[p1][h]), Lit::neg(at[p2][h])});
        }
    }
}

TEST(ClauseBankTest, PublishAndFetch)
{
    ClauseBank bank;
    int family = bank.openFamily("f");
    int p0 = bank.registerProducer(family);
    int p1 = bank.registerProducer(family);

    EXPECT_TRUE(bank.publish(family, p0, {Lit::pos(0), Lit::neg(1)}, 2));
    EXPECT_EQ(bank.published(), 1u);

    std::vector<ClauseBank::Entry> got;
    size_t cursor = 0;
    bank.fetch(family, p1, cursor, got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].lits, (std::vector<Lit>{Lit::pos(0), Lit::neg(1)}));
    EXPECT_EQ(got[0].producer, p0);

    // The cursor advanced: a second fetch sees nothing new.
    got.clear();
    bank.fetch(family, p1, cursor, got);
    EXPECT_TRUE(got.empty());
}

TEST(ClauseBankTest, ProducerDoesNotFetchItsOwnClauses)
{
    ClauseBank bank;
    int family = bank.openFamily("f");
    int p0 = bank.registerProducer(family);
    ASSERT_TRUE(bank.publish(family, p0, {Lit::pos(3)}, 1));
    std::vector<ClauseBank::Entry> got;
    size_t cursor = 0;
    bank.fetch(family, p0, cursor, got);
    EXPECT_TRUE(got.empty());
}

TEST(ClauseBankTest, DeduplicatesByLiteralSet)
{
    ClauseBank bank;
    int family = bank.openFamily("f");
    int p0 = bank.registerProducer(family);
    int p1 = bank.registerProducer(family);
    EXPECT_TRUE(bank.publish(family, p0, {Lit::pos(0), Lit::pos(1)}, 2));
    // Same literal set, different order and different producer: dropped.
    EXPECT_FALSE(bank.publish(family, p1, {Lit::pos(1), Lit::pos(0)}, 2));
    EXPECT_EQ(bank.published(), 1u);
}

TEST(ClauseBankTest, QualityFilterRejectsWeakClauses)
{
    ClauseBank bank(ClauseBank::Limits{2, 3});
    int family = bank.openFamily("f");
    int p0 = bank.registerProducer(family);
    EXPECT_FALSE(
        bank.publish(family, p0, {Lit::pos(0), Lit::pos(1)}, 3)); // lbd
    EXPECT_FALSE(bank.publish(family, p0,
                              {Lit::pos(0), Lit::pos(1), Lit::pos(2),
                               Lit::pos(3)},
                              2)); // length
    EXPECT_TRUE(bank.publish(family, p0, {Lit::pos(0), Lit::pos(1)}, 2));
}

TEST(ClauseBankTest, FamiliesAreIsolated)
{
    ClauseBank bank;
    int f1 = bank.openFamily("size-3");
    int f2 = bank.openFamily("size-4");
    EXPECT_NE(f1, f2);
    EXPECT_EQ(bank.openFamily("size-3"), f1);
    int p1 = bank.registerProducer(f1);
    int p2 = bank.registerProducer(f2);
    ASSERT_TRUE(bank.publish(f1, p1, {Lit::pos(0)}, 1));
    std::vector<ClauseBank::Entry> got;
    size_t cursor = 0;
    bank.fetch(f2, p2, cursor, got);
    EXPECT_TRUE(got.empty());
}

TEST(ClauseBankTest, SolversExchangeAndAgree)
{
    // Two identically built solvers on an UNSAT instance: the second
    // imports the first's learnt clauses and must reach the same
    // answer with no more conflicts than it caused alone.
    Solver alone;
    addPigeonhole(alone, 6);
    ASSERT_EQ(alone.solve(), SolveResult::Unsat);

    ClauseBank bank;
    int family = bank.openFamily("ph6");
    Solver first, second;
    addPigeonhole(first, 6);
    addPigeonhole(second, 6);
    first.connectBank(bank, family, first.numVars());
    second.connectBank(bank, family, second.numVars());
    ASSERT_EQ(first.solve(), SolveResult::Unsat);
    EXPECT_GT(first.stats().exportedClauses, 0u);
    ASSERT_EQ(second.solve(), SolveResult::Unsat);
    EXPECT_GT(second.stats().importedClauses, 0u);
    EXPECT_LE(second.stats().conflicts, alone.stats().conflicts);
}

TEST(ClauseBankTest, SharingPreservesSatAnswersAndModels)
{
    // A satisfiable shard pair: imports are implied clauses, so the
    // second solver still finds a model that checks out.
    ClauseBank bank;
    int family = bank.openFamily("sat");
    std::vector<Solver> solvers(2);
    for (Solver &s : solvers) {
        std::vector<Var> v;
        for (int i = 0; i < 20; i++)
            v.push_back(s.newVar());
        for (int i = 0; i + 2 < 20; i++) {
            s.addClause({Lit::neg(v[i]), Lit::pos(v[i + 1]),
                         Lit::pos(v[i + 2])});
            s.addClause({Lit::pos(v[i]), Lit::neg(v[i + 1]),
                         Lit::neg(v[i + 2])});
        }
        s.connectBank(bank, family, s.numVars());
    }
    ASSERT_EQ(solvers[0].solve(), SolveResult::Sat);
    EXPECT_TRUE(solvers[0].checkModel());
    ASSERT_EQ(solvers[1].solve(), SolveResult::Sat);
    EXPECT_TRUE(solvers[1].checkModel());
}

TEST(ClauseBankTest, PermanentSharedClauseStopsExports)
{
    // Adding a shard-local permanent clause over shared variables voids
    // the family's soundness contract for exports; the safety net must
    // silence this producer (imports remain fine).
    ClauseBank bank;
    int family = bank.openFamily("poison");
    Solver s;
    addPigeonhole(s, 6);
    s.connectBank(bank, family, s.numVars());
    ASSERT_TRUE(s.addClause({Lit::pos(0), Lit::pos(1)}));
    ASSERT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_EQ(s.stats().exportedClauses, 0u);
}

TEST(ClauseBankStressTest, ConcurrentSolversShareOneFamily)
{
    // The CI TSan job runs this: several threads, each with a private
    // solver on the same formula, exchanging through one family while
    // solving concurrently.
    ClauseBank bank;
    int family = bank.openFamily("stress");
    const int num_threads = 4;
    std::vector<std::thread> threads;
    std::vector<SolveResult> results(num_threads, SolveResult::Sat);
    for (int t = 0; t < num_threads; t++) {
        threads.emplace_back([&, t] {
            Solver s;
            addPigeonhole(s, 6);
            s.connectBank(bank, family, s.numVars());
            results[t] = s.solve();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < num_threads; t++)
        EXPECT_EQ(results[t], SolveResult::Unsat) << "thread " << t;
    EXPECT_GT(bank.published(), 0u);
}

TEST(ClauseBankStressTest, RawPublishFetchHammer)
{
    // Protocol-level hammer with no solver in the way: writers publish
    // distinct clauses while readers drain with private cursors.
    ClauseBank bank;
    int family = bank.openFamily("hammer");
    const int num_writers = 3, num_readers = 3, per_writer = 500;
    std::vector<int> writer_ids;
    for (int w = 0; w < num_writers; w++)
        writer_ids.push_back(bank.registerProducer(family));
    int reader_id = bank.registerProducer(family);
    std::vector<std::thread> threads;
    for (int w = 0; w < num_writers; w++) {
        threads.emplace_back([&, w] {
            for (int i = 0; i < per_writer; i++) {
                Var base = static_cast<Var>(w * per_writer + i) * 2;
                bank.publish(family, writer_ids[w],
                             {Lit::pos(base), Lit::neg(base + 1)}, 2);
            }
        });
    }
    std::vector<size_t> drained(num_readers, 0);
    for (int r = 0; r < num_readers; r++) {
        threads.emplace_back([&, r] {
            size_t cursor = 0;
            std::vector<ClauseBank::Entry> got;
            while (drained[r] < num_writers * per_writer) {
                got.clear();
                bank.fetch(family, reader_id, cursor, got);
                drained[r] += got.size();
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(bank.published(),
              static_cast<uint64_t>(num_writers) * per_writer);
    for (int r = 0; r < num_readers; r++)
        EXPECT_EQ(drained[r], static_cast<size_t>(num_writers) * per_writer);
}

} // namespace
} // namespace lts::sat
