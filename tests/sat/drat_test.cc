/**
 * @file
 * Tests for the DRAT proof writer and the independent backward checker:
 * writer/parser round trips in both formats, acceptance of valid RUP and
 * RAT derivations, and — the part that keeps the checker honest — one
 * mutated proof per failure mode, each rejected with its own diagnostic
 * (dropped RUP step, premature deletion, bogus RAT pivot, truncated
 * binary record, missing conclusion).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sat/drat.hh"
#include "sat/solver.hh"

namespace lts::sat
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

DratStep
step(DratStep::Kind kind, std::vector<Lit> lits)
{
    DratStep s;
    s.kind = kind;
    s.lits = std::move(lits);
    return s;
}

/**
 * The canonical four-clause contradiction over {a, b}: every assignment
 * falsifies one input, (b) is RUP, and the empty conclusion follows.
 */
std::vector<DratStep>
validProof()
{
    Lit a = Lit::pos(0), b = Lit::pos(1);
    return {
        step(DratStep::Kind::Input, {a, b}),
        step(DratStep::Kind::Input, {~a, b}),
        step(DratStep::Kind::Input, {a, ~b}),
        step(DratStep::Kind::Input, {~a, ~b}),
        step(DratStep::Kind::Derived, {b}),
        step(DratStep::Kind::Conclusion, {}),
    };
}

// --- writer / parser round trips --------------------------------------------

TEST(DratWriterTest, TextRoundTrip)
{
    std::string path = tmpPath("roundtrip.text.drat");
    {
        DratWriter w(path, DratFormat::Text);
        ASSERT_TRUE(w.good());
        w.addInput({Lit::pos(0), Lit::neg(1)});
        w.addDerived({Lit::pos(0)});
        w.deleteClause({Lit::pos(0), Lit::neg(1)});
        w.addConclusion({Lit::neg(2)});
    }
    std::vector<DratStep> steps;
    std::string error;
    ASSERT_TRUE(parseDratFile(path, steps, error)) << error;
    ASSERT_EQ(steps.size(), 4u);
    EXPECT_EQ(steps[0].kind, DratStep::Kind::Input);
    EXPECT_EQ(steps[0].lits,
              (std::vector<Lit>{Lit::pos(0), Lit::neg(1)}));
    EXPECT_EQ(steps[1].kind, DratStep::Kind::Derived);
    EXPECT_EQ(steps[2].kind, DratStep::Kind::Delete);
    EXPECT_EQ(steps[3].kind, DratStep::Kind::Conclusion);
    EXPECT_EQ(steps[3].lits, (std::vector<Lit>{Lit::neg(2)}));
    std::remove(path.c_str());
}

TEST(DratWriterTest, BinaryRoundTripWithWideVars)
{
    // Variable 300 forces a multi-byte varint literal code.
    std::string path = tmpPath("roundtrip.bin.drat");
    {
        DratWriter w(path, DratFormat::Binary);
        ASSERT_TRUE(w.good());
        w.addInput({Lit::pos(300), Lit::neg(0)});
        w.addDerived({});
        w.addConclusion({Lit::neg(300)});
    }
    std::vector<DratStep> steps;
    std::string error;
    ASSERT_TRUE(parseDratFile(path, steps, error)) << error;
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_EQ(steps[0].lits,
              (std::vector<Lit>{Lit::pos(300), Lit::neg(0)}));
    EXPECT_TRUE(steps[1].lits.empty());
    EXPECT_EQ(steps[2].lits, (std::vector<Lit>{Lit::neg(300)}));
    std::remove(path.c_str());
}

// --- checker acceptance -----------------------------------------------------

TEST(DratCheckTest, AcceptsValidRupProof)
{
    DratCheckResult res = checkDrat(validProof());
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inputs, 4u);
    EXPECT_EQ(res.derived, 1u);
    EXPECT_EQ(res.conclusions, 1u);
    EXPECT_EQ(res.verified, 2u); // the derived (b) and the conclusion
    EXPECT_EQ(res.ratSteps, 0u);
    EXPECT_GE(res.coreSteps, 2u);
    EXPECT_GE(res.coreInputs, 2u);
}

TEST(DratCheckTest, AcceptsRatStepWithNoPartners)
{
    // (a) is not RUP from (a | b) alone, but a never occurs negated, so
    // RAT on pivot a holds vacuously.
    Lit a = Lit::pos(0), b = Lit::pos(1);
    DratCheckResult res = checkDrat({
        step(DratStep::Kind::Input, {a, b}),
        step(DratStep::Kind::Derived, {a}),
        step(DratStep::Kind::Conclusion, {a}),
    });
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.ratSteps, 1u);
}

TEST(DratCheckTest, HonorsDeletionOrderWhenRebuilding)
{
    // The derived (b) is justified by inputs deleted *after* it; the
    // backward walk must restore them before re-checking the step.
    Lit a = Lit::pos(0), b = Lit::pos(1);
    DratCheckResult res = checkDrat({
        step(DratStep::Kind::Input, {a, b}),
        step(DratStep::Kind::Input, {~a, b}),
        step(DratStep::Kind::Input, {a, ~b}),
        step(DratStep::Kind::Input, {~a, ~b}),
        step(DratStep::Kind::Derived, {b}),
        step(DratStep::Kind::Delete, {a, b}),
        step(DratStep::Kind::Delete, {~a, b}),
        step(DratStep::Kind::Conclusion, {}),
    });
    EXPECT_TRUE(res.ok) << res.error;
}

// --- mutated proofs: one distinct diagnostic per failure mode ---------------

TEST(DratCheckTest, RejectsDroppedRupStep)
{
    // Remove the derived (b): the inputs alone no longer unit-propagate
    // to a conflict, so the empty conclusion fails its RUP check.
    std::vector<DratStep> steps = validProof();
    steps.erase(steps.begin() + 4);
    DratCheckResult res = checkDrat(steps);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("conclusion clause is not RUP"),
              std::string::npos)
        << res.error;
}

TEST(DratCheckTest, RejectsPrematureDeletion)
{
    // Delete (b) before any add step produced it.
    std::vector<DratStep> steps = validProof();
    steps.insert(steps.begin() + 4,
                 step(DratStep::Kind::Delete, {Lit::pos(1)}));
    DratCheckResult res = checkDrat(steps);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.errorStep, 4u);
    EXPECT_NE(res.error.find("deletes a clause not in the database"),
              std::string::npos)
        << res.error;
}

TEST(DratCheckTest, RejectsBogusRatPivot)
{
    // (a | b) is neither RUP from (~a | c) nor RAT on pivot a: the
    // resolvent (b | c) does not propagate to a conflict.
    Lit a = Lit::pos(0), b = Lit::pos(1), c = Lit::pos(2);
    DratCheckResult res = checkDrat({
        step(DratStep::Kind::Input, {~a, c}),
        step(DratStep::Kind::Derived, {a, b}),
        step(DratStep::Kind::Conclusion, {a, b}),
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("clause is not RUP, and RAT on pivot"),
              std::string::npos)
        << res.error;
    EXPECT_NE(res.error.find("partner clause added at step 0"),
              std::string::npos)
        << res.error;
}

TEST(DratCheckTest, RejectsTruncatedBinaryProof)
{
    std::string path = tmpPath("truncated.bin.drat");
    {
        DratWriter w(path, DratFormat::Binary);
        ASSERT_TRUE(w.good());
        w.addInput({Lit::pos(0)});
        w.addConclusion({Lit::pos(0)});
    }
    // Chop the final record terminator off the file.
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        data.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_GT(data.size(), 1u);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size() - 1));
    }
    std::vector<DratStep> steps;
    std::string error;
    EXPECT_FALSE(parseDratFile(path, steps, error));
    EXPECT_NE(error.find("truncated record in binary proof"),
              std::string::npos)
        << error;
    DratCheckResult res = checkDratFile(path);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("truncated record in binary proof"),
              std::string::npos)
        << res.error;
    std::remove(path.c_str());
}

TEST(DratCheckTest, RejectsProofWithoutConclusion)
{
    std::vector<DratStep> steps = validProof();
    steps.pop_back();
    DratCheckResult res = checkDrat(steps);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("proof has no conclusion"), std::string::npos)
        << res.error;
}

// --- solver integration -----------------------------------------------------

TEST(DratSolverTest, SolverProofChecks)
{
    std::string path = tmpPath("solver.drat");
    {
        Solver s;
        Var a = s.newVar(), b = s.newVar();
        s.addClause({Lit::pos(a), Lit::pos(b)});
        s.addClause({Lit::neg(a), Lit::pos(b)});
        s.addClause({Lit::pos(a), Lit::neg(b)});
        s.addClause({Lit::neg(a), Lit::neg(b)});
        DratWriter w(path, DratFormat::Text);
        s.setProof(&w);
        EXPECT_EQ(s.solve(), SolveResult::Unsat);
        s.proofConcludeUnsat();
    }
    DratCheckResult res = checkDratFile(path);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.conclusions, 1u);
    std::remove(path.c_str());
}

TEST(DratSolverTest, FailedAssumptionsConcludeNegatedCube)
{
    // Unsat only under assumptions: the conclusion is the negated
    // failed-assumption cube, and the proof must still check.
    std::string path = tmpPath("assumptions.drat");
    {
        Solver s;
        Var a = s.newVar(), b = s.newVar();
        s.addClause({Lit::neg(a), Lit::pos(b)});
        DratWriter w(path, DratFormat::Binary);
        s.setProof(&w);
        EXPECT_EQ(s.solve({Lit::pos(a), Lit::neg(b)}),
                  SolveResult::Unsat);
        s.proofConcludeUnsat();
        // The instance stays live: a second query under the other
        // polarity is satisfiable and must not disturb the proof.
        EXPECT_EQ(s.solve({Lit::pos(a), Lit::pos(b)}),
                  SolveResult::Sat);
    }
    DratCheckResult res = checkDratFile(path);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.conclusions, 1u);
    std::remove(path.c_str());
}

TEST(DratSolverTest, SimplifiedSolverProofChecks)
{
    // simplify() rewrites the clause database (strengthening, BVE,
    // trail rebuilds); every rewrite must be logged so the final
    // conclusion still checks against the original inputs.
    std::string path = tmpPath("simplify.drat");
    {
        Solver s;
        std::vector<Var> v;
        for (int i = 0; i < 6; i++)
            v.push_back(s.newVar());
        // A chain a -> b -> c -> d plus a contradiction at the end.
        s.addClause({Lit::neg(v[0]), Lit::pos(v[1])});
        s.addClause({Lit::neg(v[1]), Lit::pos(v[2])});
        s.addClause({Lit::neg(v[2]), Lit::pos(v[3])});
        s.addClause({Lit::pos(v[0]), Lit::pos(v[4])});
        s.addClause({Lit::pos(v[0]), Lit::neg(v[4])});
        s.addClause({Lit::neg(v[3]), Lit::pos(v[5])});
        s.addClause({Lit::neg(v[3]), Lit::neg(v[5])});
        DratWriter w(path, DratFormat::Text);
        s.setProof(&w);
        s.simplify();
        EXPECT_EQ(s.solve(), SolveResult::Unsat);
        s.proofConcludeUnsat();
    }
    DratCheckResult res = checkDratFile(path, /*verify_all=*/true);
    EXPECT_TRUE(res.ok) << res.error;
    std::remove(path.c_str());
}

} // namespace
} // namespace lts::sat
