/**
 * @file
 * Unit and property tests for the CDCL SAT solver.
 *
 * Besides hand-built formulas, a reference brute-force evaluator checks
 * the solver against exhaustive enumeration on randomly generated small
 * CNFs: SAT/UNSAT answers must agree, and every returned model must
 * actually satisfy the formula.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sat/solver.hh"

namespace lts::sat
{
namespace
{

/** Evaluate @p cnf under assignment bits of @p assignment. */
bool
evaluate(const std::vector<Clause> &cnf, uint32_t assignment)
{
    for (const auto &clause : cnf) {
        bool sat = false;
        for (Lit l : clause) {
            bool v = (assignment >> l.var()) & 1;
            if (l.sign() ? !v : v) {
                sat = true;
                break;
            }
        }
        if (!sat)
            return false;
    }
    return true;
}

/** Brute-force satisfiability over @p num_vars variables. */
bool
bruteForceSat(const std::vector<Clause> &cnf, int num_vars)
{
    for (uint32_t a = 0; a < (uint32_t(1) << num_vars); a++) {
        if (evaluate(cnf, a))
            return true;
    }
    return false;
}

TEST(SolverTest, EmptyFormulaIsSat)
{
    Solver s;
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, SingleUnit)
{
    Solver s;
    Var a = s.newVar();
    ASSERT_TRUE(s.addClause({Lit::pos(a)}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addClause({Lit::pos(a)}));
    EXPECT_FALSE(s.addClause({Lit::neg(a)}));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_TRUE(s.inConflict());
}

TEST(SolverTest, TautologicalClauseIgnored)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addClause({Lit::pos(a), Lit::neg(a)}));
    EXPECT_EQ(s.numClauses(), 0);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, DuplicateLiteralsDeduped)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    EXPECT_TRUE(s.addClause({Lit::pos(a), Lit::pos(a), Lit::pos(b)}));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, ImplicationChainPropagates)
{
    Solver s;
    std::vector<Var> v;
    for (int i = 0; i < 20; i++)
        v.push_back(s.newVar());
    for (int i = 0; i + 1 < 20; i++)
        ASSERT_TRUE(s.addClause({Lit::neg(v[i]), Lit::pos(v[i + 1])}));
    ASSERT_TRUE(s.addClause({Lit::pos(v[0])}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    for (int i = 0; i < 20; i++)
        EXPECT_TRUE(s.modelValue(v[i])) << "var " << i;
}

TEST(SolverTest, XorChainSat)
{
    // x0 xor x1 xor ... == 1, expressed clause-wise pairwise.
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    Var c = s.newVar();
    // a xor b = c
    ASSERT_TRUE(s.addClause({Lit::neg(a), Lit::neg(b), Lit::neg(c)}));
    ASSERT_TRUE(s.addClause({Lit::pos(a), Lit::pos(b), Lit::neg(c)}));
    ASSERT_TRUE(s.addClause({Lit::pos(a), Lit::neg(b), Lit::pos(c)}));
    ASSERT_TRUE(s.addClause({Lit::neg(a), Lit::pos(b), Lit::pos(c)}));
    ASSERT_TRUE(s.addClause({Lit::pos(c)}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(s.modelValue(a) != s.modelValue(b), s.modelValue(c));
}

/** Encode the pigeonhole principle PHP(n+1, n): unsatisfiable. */
void
addPigeonhole(Solver &s, int holes)
{
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; p++) {
        for (int h = 0; h < holes; h++)
            at[p][h] = s.newVar();
    }
    for (int p = 0; p < pigeons; p++) {
        Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(Lit::pos(at[p][h]));
        ASSERT_TRUE(s.addClause(c));
    }
    for (int h = 0; h < holes; h++) {
        for (int p1 = 0; p1 < pigeons; p1++) {
            for (int p2 = p1 + 1; p2 < pigeons; p2++) {
                s.addClause({Lit::neg(at[p1][h]), Lit::neg(at[p2][h])});
            }
        }
    }
}

TEST(SolverTest, PigeonholeUnsat)
{
    for (int holes = 2; holes <= 6; holes++) {
        Solver s;
        addPigeonhole(s, holes);
        EXPECT_EQ(s.solve(), SolveResult::Unsat) << "PHP with " << holes << " holes";
    }
}

TEST(SolverTest, PigeonholeExactFitSat)
{
    // n pigeons in n holes is satisfiable.
    int n = 5;
    Solver s;
    std::vector<std::vector<Var>> at(n, std::vector<Var>(n));
    for (int p = 0; p < n; p++) {
        for (int h = 0; h < n; h++)
            at[p][h] = s.newVar();
    }
    for (int p = 0; p < n; p++) {
        Clause c;
        for (int h = 0; h < n; h++)
            c.push_back(Lit::pos(at[p][h]));
        ASSERT_TRUE(s.addClause(c));
    }
    for (int h = 0; h < n; h++) {
        for (int p1 = 0; p1 < n; p1++) {
            for (int p2 = p1 + 1; p2 < n; p2++)
                s.addClause({Lit::neg(at[p1][h]), Lit::neg(at[p2][h])});
        }
    }
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, AssumptionsRestrictAndRelease)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    ASSERT_TRUE(s.addClause({Lit::pos(a), Lit::pos(b)}));

    EXPECT_EQ(s.solve({Lit::neg(a)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(b));

    EXPECT_EQ(s.solve({Lit::neg(b)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));

    EXPECT_EQ(s.solve({Lit::neg(a), Lit::neg(b)}), SolveResult::Unsat);
    // The solver is still usable and satisfiable without assumptions.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, ConflictAssumptionsReported)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    ASSERT_TRUE(s.addClause({Lit::pos(a)}));
    (void)b;
    ASSERT_EQ(s.solve({Lit::neg(a)}), SolveResult::Unsat);
    const auto &confl = s.conflictAssumptions();
    ASSERT_FALSE(confl.empty());
    EXPECT_TRUE(std::find(confl.begin(), confl.end(), Lit::pos(a)) !=
                confl.end());
}

TEST(SolverTest, IncrementalBlockingEnumeratesAllModels)
{
    // 3 free variables -> 8 models; block each model as found.
    Solver s;
    std::vector<Var> vars = {s.newVar(), s.newVar(), s.newVar()};
    int models = 0;
    while (s.solve() == SolveResult::Sat) {
        ASSERT_TRUE(s.checkModel());
        models++;
        ASSERT_LE(models, 8);
        Clause blocking;
        for (Var v : vars)
            blocking.push_back(Lit(v, s.modelValue(v)));
        if (!s.addClause(blocking))
            break;
    }
    EXPECT_EQ(models, 8);
}

TEST(SolverTest, RandomCnfAgainstBruteForce)
{
    std::mt19937 rng(12345);
    int sat_count = 0;
    int unsat_count = 0;
    for (int iter = 0; iter < 300; iter++) {
        int num_vars = 4 + static_cast<int>(rng() % 6);   // 4..9
        int num_clauses = 5 + static_cast<int>(rng() % 36); // 5..40
        std::vector<Clause> cnf;
        for (int c = 0; c < num_clauses; c++) {
            int len = 1 + static_cast<int>(rng() % 3);
            Clause clause;
            for (int l = 0; l < len; l++) {
                Var v = static_cast<Var>(rng() % num_vars);
                clause.push_back(Lit(v, rng() & 1));
            }
            cnf.push_back(clause);
        }

        Solver s;
        for (int v = 0; v < num_vars; v++)
            s.newVar();
        bool trivially_unsat = false;
        for (const auto &clause : cnf) {
            if (!s.addClause(clause)) {
                trivially_unsat = true;
                break;
            }
        }
        bool got = !trivially_unsat && s.solve() == SolveResult::Sat;
        bool want = bruteForceSat(cnf, num_vars);
        ASSERT_EQ(got, want) << "iteration " << iter;
        if (got) {
            ASSERT_TRUE(s.checkModel()) << "iteration " << iter;
            sat_count++;
            uint32_t assignment = 0;
            for (int v = 0; v < num_vars; v++) {
                if (s.modelValue(static_cast<Var>(v)))
                    assignment |= uint32_t(1) << v;
            }
            ASSERT_TRUE(evaluate(cnf, assignment))
                << "solver returned a non-model on iteration " << iter;
        } else {
            unsat_count++;
        }
    }
    // The distribution should include both kinds, or the test is too weak.
    EXPECT_GT(sat_count, 20);
    EXPECT_GT(unsat_count, 20);
}

TEST(SolverTest, RandomCnfUnderAssumptionsAgainstBruteForce)
{
    std::mt19937 rng(999);
    for (int iter = 0; iter < 150; iter++) {
        int num_vars = 5 + static_cast<int>(rng() % 4);
        int num_clauses = 8 + static_cast<int>(rng() % 25);
        std::vector<Clause> cnf;
        for (int c = 0; c < num_clauses; c++) {
            int len = 2 + static_cast<int>(rng() % 2);
            Clause clause;
            for (int l = 0; l < len; l++)
                clause.push_back(Lit(static_cast<Var>(rng() % num_vars),
                                     rng() & 1));
            cnf.push_back(clause);
        }
        std::vector<Lit> assumptions;
        int num_assumps = static_cast<int>(rng() % 3);
        for (int a = 0; a < num_assumps; a++)
            assumptions.push_back(
                Lit(static_cast<Var>(rng() % num_vars), rng() & 1));

        Solver s;
        for (int v = 0; v < num_vars; v++)
            s.newVar();
        bool trivially_unsat = false;
        for (const auto &clause : cnf) {
            if (!s.addClause(clause))
                trivially_unsat = true;
        }

        std::vector<Clause> cnf_with_assumps = cnf;
        for (Lit a : assumptions)
            cnf_with_assumps.push_back({a});
        bool want = bruteForceSat(cnf_with_assumps, num_vars);
        bool got =
            !trivially_unsat && s.solve(assumptions) == SolveResult::Sat;
        if (trivially_unsat)
            ASSERT_FALSE(bruteForceSat(cnf, num_vars));
        else
            ASSERT_EQ(got, want) << "iteration " << iter;
    }
}

TEST(SolverTest, ReusableAfterUnsatAssumptions)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    ASSERT_TRUE(s.addClause({Lit::pos(a), Lit::pos(b)}));
    ASSERT_EQ(s.solve({Lit::neg(a), Lit::neg(b)}), SolveResult::Unsat);
    ASSERT_EQ(s.solve({Lit::pos(a)}), SolveResult::Sat);
    ASSERT_TRUE(s.addClause({Lit::neg(a)}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_FALSE(s.modelValue(a));
}

TEST(SolverTest, StatsAreTracked)
{
    Solver s;
    addPigeonhole(s, 5);
    ASSERT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
    EXPECT_GT(s.stats().propagations, 0u);
    EXPECT_GT(s.stats().decisions, 0u);
}

TEST(SolverTest, ConflictBudgetStopsSearch)
{
    Solver s;
    addPigeonhole(s, 9); // hard enough to take > 5 conflicts
    s.setConflictBudget(5);
    EXPECT_EQ(s.solve(), SolveResult::BudgetExhausted);
    s.setConflictBudget(0);
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SolverTest, ConflictBudgetReArmsFromCurrentCount)
{
    // The budget counts conflicts from the setConflictBudget call, so a
    // long-lived solver can give each query family a fresh allowance.
    Solver s;
    addPigeonhole(s, 9);
    s.setConflictBudget(5);
    ASSERT_EQ(s.solve(), SolveResult::BudgetExhausted);
    uint64_t after_first = s.stats().conflicts;
    // Without re-arming, the spent budget would abort instantly; a fresh
    // budget of the same magnitude must buy another real search slice.
    s.setConflictBudget(5);
    ASSERT_EQ(s.solve(), SolveResult::BudgetExhausted);
    EXPECT_GE(s.stats().conflicts, after_first + 5);
}

TEST(SolverTest, GroupClausesBindOnlyWhenAssumed)
{
    Solver s;
    Var a = s.newVar();
    Group g = s.newGroup();
    ASSERT_TRUE(s.addClause(g, {Lit::neg(a)}));
    ASSERT_TRUE(s.addClause({Lit::pos(a)}));

    // Without the activation literal the group's clause is inert.
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    // With it, ~a clashes with the permanent unit a.
    EXPECT_EQ(s.solve({s.groupLit(g)}), SolveResult::Unsat);
    const auto &confl = s.conflictAssumptions();
    EXPECT_TRUE(std::find(confl.begin(), confl.end(), ~s.groupLit(g)) !=
                confl.end());
}

TEST(SolverTest, ReleasedGroupNeverPropagates)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    Group g = s.newGroup();
    ASSERT_TRUE(s.addClause(g, {Lit::neg(a)}));
    ASSERT_TRUE(s.addClause(g, {Lit::pos(b)}));
    ASSERT_EQ(s.solve({s.groupLit(g), Lit::pos(a)}), SolveResult::Unsat);

    s.release(g);
    EXPECT_TRUE(s.isReleased(g));
    // The retracted clauses are gone for good: both polarities of both
    // variables are reachable again.
    ASSERT_EQ(s.solve({Lit::pos(a), Lit::neg(b)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_FALSE(s.modelValue(b));
    // Releasing twice is a no-op.
    s.release(g);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverTest, CheckModelValidatesSatAnswers)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    Var c = s.newVar();
    // checkModel() is only meaningful after a Sat answer.
    EXPECT_FALSE(s.checkModel());
    ASSERT_TRUE(s.addClause({Lit::pos(a), Lit::pos(b)}));
    ASSERT_TRUE(s.addClause({Lit::neg(a), Lit::pos(c)}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.checkModel());

    // Grouped clauses carry their activation guard, so the check holds
    // whether or not the group is assumed.
    Group g = s.newGroup();
    ASSERT_TRUE(s.addClause(g, {Lit::neg(b)}));
    ASSERT_EQ(s.solve({s.groupLit(g)}), SolveResult::Sat);
    EXPECT_TRUE(s.checkModel());
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.checkModel());

    // After an Unsat answer the previous model is stale; report failure.
    ASSERT_EQ(s.solve({Lit::pos(a), Lit::neg(c)}), SolveResult::Unsat);
    EXPECT_FALSE(s.checkModel());
}

TEST(SolverTest, ManyGroupsActivateIndependently)
{
    Solver s;
    Var x = s.newVar();
    Group even = s.newGroup();
    Group odd = s.newGroup();
    ASSERT_TRUE(s.addClause(even, {Lit::pos(x)}));
    ASSERT_TRUE(s.addClause(odd, {Lit::neg(x)}));

    ASSERT_EQ(s.solve({s.groupLit(even)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
    ASSERT_EQ(s.solve({s.groupLit(odd)}), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_EQ(s.solve({s.groupLit(even), s.groupLit(odd)}),
              SolveResult::Unsat);

    s.release(even);
    ASSERT_EQ(s.solve({s.groupLit(odd)}), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
}

TEST(SolverTest, GroupedPigeonholeMatchesPermanentAnswer)
{
    // The same UNSAT core asserted through a group must answer exactly
    // like the permanent encoding, and disappear on release.
    Solver s;
    int holes = 4;
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; p++) {
        for (int h = 0; h < holes; h++)
            at[p][h] = s.newVar();
    }
    Group g = s.newGroup();
    for (int p = 0; p < pigeons; p++) {
        Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(Lit::pos(at[p][h]));
        ASSERT_TRUE(s.addClause(g, c));
    }
    for (int h = 0; h < holes; h++) {
        for (int p1 = 0; p1 < pigeons; p1++) {
            for (int p2 = p1 + 1; p2 < pigeons; p2++) {
                ASSERT_TRUE(s.addClause(
                    g, {Lit::neg(at[p1][h]), Lit::neg(at[p2][h])}));
            }
        }
    }
    EXPECT_EQ(s.solve({s.groupLit(g)}), SolveResult::Unsat);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    s.release(g);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(s.numClauses(), 0);
}

TEST(SolverTest, ReduceDBKeepsGlueAndBinaryClauses)
{
    // Learn some clauses on a hard instance, then force a reduction:
    // the database must shrink without losing correctness.
    Solver s;
    addPigeonhole(s, 7);
    s.setConflictBudget(2000);
    ASSERT_NE(s.solve(), SolveResult::Sat);
    int learned_before = s.numLearned();
    ASSERT_GT(learned_before, 0);
    uint64_t reduces_before = s.stats().reduceCalls;
    s.reduceLearnedClauses();
    EXPECT_EQ(s.stats().reduceCalls, reduces_before + 1);
    EXPECT_LE(s.numLearned(), learned_before);
    // Still answers correctly after the purge.
    s.setConflictBudget(0);
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(LitTest, EncodingRoundTrips)
{
    Lit p = Lit::pos(7);
    EXPECT_EQ(p.var(), 7);
    EXPECT_FALSE(p.sign());
    Lit n = ~p;
    EXPECT_EQ(n.var(), 7);
    EXPECT_TRUE(n.sign());
    EXPECT_EQ(~n, p);
    EXPECT_EQ(Lit::fromCode(p.index()), p);
    EXPECT_EQ(p.toString(), "x7");
    EXPECT_EQ(n.toString(), "~x7");
    EXPECT_FALSE(Lit().valid());
}

} // namespace
} // namespace lts::sat
