/**
 * @file
 * End-to-end integration tests tying the whole pipeline together:
 *
 *  - axiomatic-vs-operational: on every synthesized TSO test (and on the
 *    Owens baseline) the store-buffer machine's outcome set must equal
 *    the axiomatic model's legal set, and the declared forbidden outcome
 *    must be unobservable;
 *  - one-instruction-weakened variants of synthesized tests must expose
 *    the forbidden outcome operationally (the minimality promise made
 *    executable);
 *  - the full synthesize -> canonicalize -> audit -> compare loop.
 */

#include <gtest/gtest.h>

#include <set>

#include "litmus/print.hh"
#include "mm/registry.hh"
#include "sim/opsim.hh"
#include "suites/owens.hh"
#include "synth/compare.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"
#include "synth/synthesizer.hh"

namespace lts
{
namespace
{

using litmus::LitmusTest;
using litmus::Outcome;

/** Axiomatic legal outcomes as operational-style signatures. */
std::set<sim::Signature>
axiomaticSignatures(const mm::Model &model, const LitmusTest &test)
{
    std::set<sim::Signature> out;
    for (const auto &o : synth::legalOutcomes(model, test))
        out.insert(sim::observableSignature(test, o));
    return out;
}

TEST(PipelineTest, AxiomaticTsoEqualsStoreBufferMachineOnSynthesizedTests)
{
    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synth::synthesizeAll(*tso, opt);
    const synth::Suite &u = suites.back();
    ASSERT_FALSE(u.tests.empty());
    for (const auto &t : u.tests) {
        auto ax = axiomaticSignatures(*tso, t);
        auto op = sim::tsoOutcomes(t);
        EXPECT_EQ(ax, op) << litmus::toString(t);
        // The forbidden outcome must not be observable either way.
        auto forbidden = sim::observableSignature(t, t.forbidden);
        EXPECT_FALSE(op.count(forbidden)) << litmus::toString(t);
    }
}

TEST(PipelineTest, AxiomaticTsoEqualsStoreBufferMachineOnOwens)
{
    auto tso = mm::makeModel("tso");
    for (const auto &e : suites::owensSuite()) {
        auto ax = axiomaticSignatures(*tso, e.test);
        auto op = sim::tsoOutcomes(e.test);
        EXPECT_EQ(ax, op) << e.test.name;
        auto outcome = sim::observableSignature(e.test, e.test.forbidden);
        EXPECT_EQ(op.count(outcome) > 0, !e.expectForbidden) << e.test.name;
    }
}

TEST(PipelineTest, AxiomaticScEqualsInterleavingMachineOnSynthesizedTests)
{
    auto sc = mm::makeModel("sc");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites_list = synth::synthesizeAll(*sc, opt);
    for (const auto &t : suites_list.back().tests) {
        auto ax = axiomaticSignatures(*sc, t);
        auto op = sim::scOutcomes(t);
        EXPECT_EQ(ax, op) << litmus::toString(t);
    }
}

/** Weaken test by deleting event @p victim (the RI relaxation). */
LitmusTest
removeEvent(const LitmusTest &test, int victim)
{
    litmus::TestBuilder b;
    for (int t = 0; t < test.numThreads; t++)
        b.newThread();
    std::vector<int> remap(test.size(), -1);
    for (size_t i = 0; i < test.size(); i++) {
        if (static_cast<int>(i) == victim)
            continue;
        const auto &e = test.events[i];
        std::string loc = "m" + std::to_string(e.loc);
        switch (e.type) {
          case litmus::EventType::Read:
            remap[i] = b.read(e.tid, loc, e.order);
            break;
          case litmus::EventType::Write:
            remap[i] = b.write(e.tid, loc, e.order);
            break;
          case litmus::EventType::Fence:
            remap[i] = b.fence(e.tid, e.order);
            break;
        }
    }
    LitmusTest out = b.build(test.name + "-RI" + std::to_string(victim));
    // Threads may have become empty; rebuild thread numbering by
    // revalidating (TestBuilder produced contiguous blocks already).
    return out;
}

TEST(PipelineTest, WeakenedTsoTestsExposeTheirOutcomeOperationally)
{
    // For each synthesized fence-free TSO causality test: deleting any
    // single instruction must make *some part* of the forbidden outcome
    // observable on the store-buffer machine. We check the projection
    // restricted to surviving reads and locations, mirroring Figure 3.
    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 4;
    opt.maxSize = 4;
    synth::Suite suite = synth::synthesizeAxiom(*tso, "causality", opt);
    for (const auto &t : suite.tests) {
        auto forbidden_sig = sim::observableSignature(t, t.forbidden);
        ASSERT_FALSE(sim::tsoOutcomes(t).count(forbidden_sig));
        for (size_t victim = 0; victim < t.size(); victim++) {
            LitmusTest weak = removeEvent(t, static_cast<int>(victim));
            if (weak.numThreads != t.numThreads)
                continue; // removing a whole thread changes projections
            auto outcomes = sim::tsoOutcomes(weak);
            // Project the forbidden signature onto surviving reads only;
            // writes' values may differ after removal, so compare only
            // the "reads initial vs reads something" skeleton.
            bool witnessed = false;
            for (const auto &sig : outcomes) {
                bool compatible = true;
                for (size_t i = 0, j = 0; i < t.size(); i++) {
                    if (static_cast<int>(i) == static_cast<int>(victim))
                        continue;
                    const auto &e = t.events[i];
                    size_t weak_id = j++;
                    if (!e.isRead())
                        continue;
                    // A read whose sourcing store was removed is left
                    // unconstrained (Figure 3d): any value matches.
                    if (t.forbidden.rf.test(victim, i))
                        continue;
                    bool was_zero = forbidden_sig[i] == 0;
                    bool is_zero = sig[weak_id] == 0;
                    if (was_zero != is_zero)
                        compatible = false;
                }
                if (compatible)
                    witnessed = true;
            }
            EXPECT_TRUE(witnessed)
                << litmus::toString(t) << " victim " << victim;
        }
    }
}

TEST(PipelineTest, Table4ContainmentHoldsEndToEnd)
{
    // Synthesize the TSO union through size 6 and check the paper's
    // claim: every forbidden Owens test is either in the suite or
    // contains a suite test (Table 4).
    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 6;
    auto suites_list = synth::synthesizeAll(*tso, opt);
    const synth::Suite &u = suites_list.back();

    auto results =
        synth::compareSuites(suites::owensForbidden(), u.tests);
    for (const auto &r : results) {
        // Tests longer than the synthesis bound can only be subsumed.
        EXPECT_TRUE(r.subsumed) << r.baselineName;
    }
    // And the Table 4 split: exactly the "Both" tests of size <= 6 are
    // present verbatim.
    std::set<std::string> in_suite;
    for (const auto &r : results) {
        if (r.inSuite)
            in_suite.insert(r.baselineName);
    }
    std::set<std::string> expected = {
        "MP", "LB", "S", "2+2W", "amd5/SB+mfences", "amd6/IRIW",
        "n4/R+mfence", "iwp2.8.a/WRC", "RWC+mfence",
    };
    EXPECT_EQ(in_suite, expected);
}

TEST(PipelineTest, SccRoundTripThroughAudit)
{
    auto scc = mm::makeModel("scc");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 3;
    auto suites_list = synth::synthesizeAll(*scc, opt);
    for (const auto &t : suites_list.back().tests) {
        EXPECT_FALSE(synth::minimalAxioms(*scc, t).empty())
            << litmus::toString(t);
    }
}

} // namespace
} // namespace lts
