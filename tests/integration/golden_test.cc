/**
 * @file
 * Golden regression tests: pin the per-axiom synthesized suite counts of
 * every model at small bounds, plus determinism of the whole pipeline.
 * Any change to a model definition, the well-formedness rules, the
 * relaxation set, or the canonicalizer that shifts these counts must be
 * deliberate and update this file.
 */

#include <gtest/gtest.h>

#include <map>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

namespace lts
{
namespace
{

using Counts = std::map<std::string, int>;

Counts
countsAt(const std::string &model_name, int min_size, int max_size)
{
    auto model = mm::makeModel(model_name);
    synth::SynthOptions opt;
    opt.minSize = min_size;
    opt.maxSize = max_size;
    Counts out;
    for (const auto &suite : synth::synthesizeAll(*model, opt))
        out[suite.axiom] = static_cast<int>(suite.tests.size());
    return out;
}

TEST(GoldenTest, ScSizes2To4)
{
    Counts want = {{"sequential_consistency", 11},
                   {"rmw_atomicity", 1},
                   {"union", 12}};
    EXPECT_EQ(countsAt("sc", 2, 4), want);
}

TEST(GoldenTest, TsoSizes2To5)
{
    Counts want = {{"sc_per_loc", 5},
                   {"rmw_atomicity", 1},
                   {"causality", 13},
                   {"union", 16}};
    EXPECT_EQ(countsAt("tso", 2, 5), want);
}

TEST(GoldenTest, PowerSizes2To4)
{
    Counts want = {{"sc_per_loc", 5},
                   {"no_thin_air", 28},
                   {"observation", 0},
                   {"propagation", 0},
                   {"union", 33}};
    EXPECT_EQ(countsAt("power", 2, 4), want);
}

TEST(GoldenTest, Armv7Sizes2To4)
{
    Counts want = {{"sc_per_loc", 5},
                   {"no_thin_air", 28},
                   {"observation", 0},
                   {"propagation", 0},
                   {"union", 33}};
    EXPECT_EQ(countsAt("armv7", 2, 4), want);
}

TEST(GoldenTest, SccSizes2To3)
{
    Counts want = {{"sc_per_loc", 5},
                   {"no_thin_air", 0},
                   {"rmw_atomicity", 1},
                   {"causality", 29},
                   {"union", 35}};
    EXPECT_EQ(countsAt("scc", 2, 3), want);
}

TEST(GoldenTest, ScopedSccSizes2To3)
{
    Counts want = {{"sc_per_loc", 7},
                   {"no_thin_air", 0},
                   {"rmw_atomicity", 2},
                   {"causality", 53},
                   {"union", 62}};
    EXPECT_EQ(countsAt("sscc", 2, 3), want);
}

TEST(GoldenTest, C11Sizes2To4)
{
    Counts want = {{"coherence", 8},
                   {"rmw_atomicity", 1},
                   {"seq_cst", 3},
                   {"union", 12}};
    EXPECT_EQ(countsAt("c11", 2, 4), want);
}

TEST(GoldenTest, PipelineIsDeterministic)
{
    // Same options twice: identical suites, test for test.
    auto model = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto a = synth::synthesizeAll(*model, opt);
    auto b = synth::synthesizeAll(*model, opt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].tests.size(), b[i].tests.size()) << a[i].axiom;
        for (size_t j = 0; j < a[i].tests.size(); j++) {
            EXPECT_EQ(litmus::fullSerialize(a[i].tests[j]),
                      litmus::fullSerialize(b[i].tests[j]));
        }
    }
}

} // namespace
} // namespace lts
