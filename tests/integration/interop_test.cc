/**
 * @file
 * Interop integration tests: every synthesized suite, for every model in
 * the registry, must survive the .litmus export -> parse -> canonicalize
 * loop byte-identically, the Owens/Cambridge baselines included; and the
 * oracle triangle must close — the operational simulators, run in the
 * exported artifacts' value space (co positions, via herdWriteValues),
 * must agree that the declared forbidden outcome is unobservable.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "litmus/cxx.hh"
#include "litmus/format.hh"
#include "litmus/herd.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "sim/opsim.hh"
#include "suites/cambridge.hh"
#include "suites/owens.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

namespace lts
{
namespace
{

using litmus::LitmusTest;

/** Export to .litmus, re-ingest, and demand byte-identity. */
void
expectHerdRoundTrip(const LitmusTest &t, const std::string &model_name)
{
    litmus::HerdOptions opt;
    opt.modelName = model_name;
    std::string text = litmus::writeHerd(t, opt);
    LitmusTest back;
    try {
        back = litmus::parseHerd(text);
    } catch (const std::exception &e) {
        FAIL() << "re-ingest failed for " << t.name << ": " << e.what()
               << "\n" << text;
    }
    EXPECT_EQ(litmus::fullSerialize(back), litmus::fullSerialize(t))
        << text;
    // Canonical forms must agree too (same equivalence class).
    EXPECT_EQ(litmus::fullSerialize(
                  litmus::canonicalize(back, litmus::CanonMode::Exact)),
              litmus::fullSerialize(
                  litmus::canonicalize(t, litmus::CanonMode::Exact)))
        << t.name;
}

TEST(InteropTest, RegistryWideHerdRoundTrip)
{
    for (const std::string &name : mm::modelNames()) {
        auto model = mm::makeModel(name);
        synth::SynthOptions opt;
        opt.minSize = 2;
        // Scoped models explode combinatorially; size 3 already covers
        // scopes, workgroups, RMWs, and split orders.
        opt.maxSize = (name == "scc" || name == "sscc") ? 3 : 4;
        auto suites = synth::synthesizeAll(*model, opt);
        const synth::Suite &u = suites.back();
        ASSERT_FALSE(u.tests.empty()) << name;
        for (const auto &t : u.tests)
            expectHerdRoundTrip(t, name);
    }
}

TEST(InteropTest, BaselineCatalogsRoundTrip)
{
    for (const auto &entry : suites::owensSuite())
        expectHerdRoundTrip(entry.test, "tso");
    for (const auto &entry : suites::cambridgeSuite())
        expectHerdRoundTrip(entry.test, "power");
}

TEST(InteropTest, InterchangeAndHerdAgreeOnSynthesizedTso)
{
    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synth::synthesizeAll(*tso, opt);
    for (const auto &t : suites.back().tests) {
        // The two interchange paths must land on the same test.
        LitmusTest via_lts = litmus::parseLitmus(litmus::writeLitmus(t));
        litmus::HerdOptions hopt;
        hopt.modelName = "tso";
        LitmusTest via_herd = litmus::parseHerd(litmus::writeHerd(t, hopt));
        EXPECT_EQ(litmus::fullSerialize(via_lts),
                  litmus::fullSerialize(via_herd))
            << t.name;
    }
}

TEST(InteropTest, OracleTriangleForbiddenUnobservableInHarnessValueSpace)
{
    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = 4;
    auto suites = synth::synthesizeAll(*tso, opt);
    int checked = 0;
    for (const auto &t : suites.back().tests) {
        if (t.depMatrix().any())
            continue; // the operational machine does not model deps
        auto values = litmus::herdWriteValues(t);
        // The signature a conforming harness would report for the
        // forbidden execution must not be reachable on the store-buffer
        // machine speaking the same value space.
        auto forbidden =
            sim::observableSignature(t, t.forbidden, values);
        auto op = sim::tsoOutcomes(t, values);
        EXPECT_EQ(op.count(forbidden), 0u) << litmus::toString(t);
        // Sanity: SC outcomes (same value space) are a subset of TSO's.
        for (const auto &sig : sim::scOutcomes(t, values))
            EXPECT_EQ(op.count(sig), 1u) << litmus::toString(t);
        checked++;
    }
    EXPECT_GT(checked, 0);
}

} // namespace
} // namespace lts
