/**
 * @file
 * End-to-end daemon tests: runDaemon on a background thread, real
 * unix-socket clients, cold/warm cache behavior, the warm-speedup
 * acceptance bound, progress streaming, ping, and shutdown.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "litmus/canon.hh"
#include "mm/registry.hh"
#include "synth/daemon.hh"
#include "synth/service.hh"
#include "synth/synthesizer.hh"

using namespace lts;
namespace fs = std::filesystem;

namespace
{

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        // Unix socket paths are length-limited; keep them short.
        base = (fs::temp_directory_path() /
                ("ltsd-" + std::to_string(::getpid()) + "-" + info->name()))
                   .string();
        fs::remove_all(base);
        fs::create_directories(base);
        config.socketPath = base + "/d.sock";
        config.storeDir = base + "/store";
    }

    void
    TearDown() override
    {
        stopDaemon();
        fs::remove_all(base);
    }

    void
    startDaemon()
    {
        server = std::thread(
            [this] { synth::runDaemon(config, &stop); });
        // The socket appears once the daemon is listening.
        for (int i = 0; i < 200 && !synth::pingDaemon(config.socketPath);
             i++) {
            ::usleep(10 * 1000);
        }
        ASSERT_TRUE(synth::pingDaemon(config.socketPath));
    }

    void
    stopDaemon()
    {
        if (!server.joinable())
            return;
        stop.store(true);
        server.join();
    }

    std::string base;
    synth::DaemonConfig config;
    std::atomic<bool> stop{false};
    std::thread server;
};

TEST_F(DaemonTest, ColdThenWarmQueryIsByteIdenticalAndFast)
{
    startDaemon();

    synth::SuiteRequest request;
    request.model = "tso";
    request.maxSize = 4;

    synth::SuiteResult cold =
        synth::queryDaemon(config.socketPath, request);
    EXPECT_EQ(cold.cache, synth::CacheOutcome::Miss);
    EXPECT_GT(cold.shardsSynthesized, 0u);
    EXPECT_GT(cold.seconds, 0.0);

    synth::SuiteResult warm =
        synth::queryDaemon(config.socketPath, request);
    EXPECT_EQ(warm.cache, synth::CacheOutcome::Hit);
    EXPECT_EQ(warm.shardsSynthesized, 0u);

    // Byte identity: same digest, same serialized tests.
    EXPECT_EQ(warm.suiteDigest, cold.suiteDigest);
    ASSERT_EQ(warm.suites.size(), cold.suites.size());
    for (size_t i = 0; i < warm.suites.size(); i++) {
        ASSERT_EQ(warm.suites[i].tests.size(), cold.suites[i].tests.size());
        for (size_t j = 0; j < warm.suites[i].tests.size(); j++) {
            EXPECT_EQ(litmus::fullSerialize(warm.suites[i].tests[j]),
                      litmus::fullSerialize(cold.suites[i].tests[j]));
        }
    }

    // Acceptance: the warm repeat answer for TSO bound 4 costs at most
    // 1/100 of cold synthesis (daemon-side seconds, so socket and
    // client process costs don't blur the comparison).
    EXPECT_LE(warm.seconds * 100.0, cold.seconds)
        << "cold " << cold.seconds << "s vs warm " << warm.seconds << "s";
}

TEST_F(DaemonTest, WarmAnswerMatchesColdSynthesizeAll)
{
    startDaemon();

    synth::SynthOptions opt;
    opt.maxSize = 4;
    auto model = mm::makeModel("tso");
    auto cold_suites = synth::synthesizeAll(*model, opt);

    synth::SuiteRequest request;
    request.model = "tso";
    request.maxSize = 4;
    synth::queryDaemon(config.socketPath, request); // populate
    synth::SuiteResult warm =
        synth::queryDaemon(config.socketPath, request);

    EXPECT_EQ(warm.cache, synth::CacheOutcome::Hit);
    ASSERT_EQ(warm.suites.size(), cold_suites.size());
    const auto &warm_union = warm.unionSuite().tests;
    const auto &cold_union = cold_suites.back().tests;
    ASSERT_EQ(warm_union.size(), cold_union.size());
    for (size_t i = 0; i < warm_union.size(); i++) {
        EXPECT_EQ(litmus::fullSerialize(warm_union[i]),
                  litmus::fullSerialize(cold_union[i]));
    }
}

TEST_F(DaemonTest, StreamsProgressOnColdQueries)
{
    startDaemon();

    synth::SuiteRequest request;
    request.model = "sc";
    request.maxSize = 3;

    std::vector<std::string> lines;
    synth::queryDaemon(config.socketPath, request,
                       [&](const std::string &line) {
                           lines.push_back(line);
                       });
    EXPECT_FALSE(lines.empty()); // shard/suite progress on a cold run
}

TEST_F(DaemonTest, RejectsMalformedModels)
{
    startDaemon();

    synth::SuiteRequest request;
    request.model = "itanium"; // not a registered model
    request.maxSize = 3;
    EXPECT_THROW(synth::queryDaemon(config.socketPath, request),
                 std::runtime_error);

    // The daemon survives the error and keeps serving.
    EXPECT_TRUE(synth::pingDaemon(config.socketPath));
    request.model = "sc";
    EXPECT_NO_THROW(synth::queryDaemon(config.socketPath, request));
}

TEST_F(DaemonTest, ShutdownRequestStopsTheDaemon)
{
    startDaemon();
    EXPECT_TRUE(synth::shutdownDaemon(config.socketPath));
    server.join();
    EXPECT_FALSE(synth::pingDaemon(config.socketPath));
    EXPECT_FALSE(fs::exists(config.socketPath)); // socket file removed
}

TEST_F(DaemonTest, PingFailsWithoutADaemon)
{
    EXPECT_FALSE(synth::pingDaemon(base + "/nosuch.sock"));
    EXPECT_FALSE(synth::shutdownDaemon(base + "/nosuch.sock"));
}

} // namespace
