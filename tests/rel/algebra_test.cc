/**
 * @file
 * Property tests for relational-algebra laws under the concrete
 * evaluator: associativity/identity of join, closure fixpoint laws,
 * transpose distribution, restriction/product identities — the algebra
 * every memory-model definition silently relies on.
 */

#include <gtest/gtest.h>

#include <random>

#include "rel/eval.hh"

namespace lts::rel
{
namespace
{

struct RandomWorld
{
    Vocabulary vocab;
    ExprPtr a, b, c;
    ExprPtr s, t;
    Instance inst;

    explicit RandomWorld(std::mt19937 &rng, size_t n)
        : a(vocab.declare("a", 2)), b(vocab.declare("b", 2)),
          c(vocab.declare("c", 2)), s(vocab.declare("s", 1)),
          t(vocab.declare("t", 1)), inst(vocab, n)
    {
        for (int id = 0; id < 3; id++) {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    if (rng() % 3 == 0)
                        inst.matrix(id).set(i, j);
                }
            }
        }
        for (int id = 3; id < 5; id++) {
            for (size_t i = 0; i < n; i++) {
                if (rng() & 1)
                    inst.set(id).set(i);
            }
        }
    }
};

class AlgebraTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AlgebraTest, LawsHoldOnRandomInstances)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 25; trial++) {
        size_t n = 2 + rng() % 5;
        RandomWorld w(rng, n);
        const auto &inst = w.inst;
        auto eq = [&](const ExprPtr &x, const ExprPtr &y) {
            return evalMatrix(x, inst) == evalMatrix(y, inst);
        };
        auto eqs = [&](const ExprPtr &x, const ExprPtr &y) {
            return evalSet(x, inst) == evalSet(y, inst);
        };

        // Join: associative, identity, annihilator.
        EXPECT_TRUE(eq(mkJoin(mkJoin(w.a, w.b), w.c),
                       mkJoin(w.a, mkJoin(w.b, w.c))));
        EXPECT_TRUE(eq(mkJoin(w.a, mkIden()), w.a));
        EXPECT_TRUE(eq(mkJoin(mkIden(), w.a), w.a));
        EXPECT_TRUE(eq(mkJoin(w.a, mkNone(2)), mkNone(2)));

        // Join distributes over union.
        EXPECT_TRUE(eq(mkJoin(w.a, w.b + w.c),
                       mkJoin(w.a, w.b) + mkJoin(w.a, w.c)));

        // Transpose: involution, anti-distribution over join.
        EXPECT_TRUE(eq(mkTranspose(mkTranspose(w.a)), w.a));
        EXPECT_TRUE(eq(mkTranspose(mkJoin(w.a, w.b)),
                       mkJoin(mkTranspose(w.b), mkTranspose(w.a))));
        EXPECT_TRUE(eq(mkTranspose(w.a + w.b),
                       mkTranspose(w.a) + mkTranspose(w.b)));

        // Closure: fixpoint, idempotence, containment.
        ExprPtr ca = mkClosure(w.a);
        EXPECT_TRUE(eq(mkClosure(ca), ca));
        EXPECT_TRUE(eq(ca, w.a + mkJoin(w.a, ca)));
        EXPECT_TRUE(evalFormula(mkSubset(w.a, ca), inst));
        EXPECT_TRUE(evalFormula(
            mkSubset(mkJoin(ca, ca), ca), inst)); // transitive
        // Reflexive closure = closure + iden.
        EXPECT_TRUE(eq(mkRClosure(w.a), ca + mkIden()));

        // De Morgan via difference on the full relation.
        ExprPtr full = mkProduct(mkUniv(), mkUniv());
        EXPECT_TRUE(eq(full - (w.a + w.b), (full - w.a) & (full - w.b)));
        EXPECT_TRUE(eq(full - (w.a & w.b), (full - w.a) + (full - w.b)));

        // Restrictions as intersections with products.
        EXPECT_TRUE(eq(mkDomRestrict(w.s, w.a),
                       w.a & mkProduct(w.s, mkUniv())));
        EXPECT_TRUE(eq(mkRanRestrict(w.a, w.t),
                       w.a & mkProduct(mkUniv(), w.t)));
        EXPECT_TRUE(eq(mkDomRestrict(w.s, mkRanRestrict(w.a, w.t)),
                       w.a & mkProduct(w.s, w.t)));

        // Join with sets: image/preimage through product.
        EXPECT_TRUE(eqs(mkJoin(w.s, mkProduct(w.s, w.t)),
                        evalSet(w.s, inst).any()
                            ? w.t
                            : mkNone(1)));

        // some/no duality and lone/one consistency.
        EXPECT_NE(evalFormula(mkSome(w.a), inst),
                  evalFormula(mkNo(w.a), inst));
        if (evalFormula(mkOne(w.a), inst)) {
            EXPECT_TRUE(evalFormula(mkLone(w.a), inst));
        }

        // Acyclicity of a relation implies acyclicity of any subset.
        if (evalFormula(mkAcyclic(w.a + w.b), inst)) {
            EXPECT_TRUE(evalFormula(mkAcyclic(w.a), inst));
            EXPECT_TRUE(evalFormula(mkAcyclic(w.b), inst));
        }
        // acyclic[r] === irreflexive[^r].
        EXPECT_EQ(evalFormula(mkAcyclic(w.a), inst),
                  evalFormula(mkIrreflexive(mkClosure(w.a)), inst));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(AlgebraTest, EmptyUniverseishEdgeCases)
{
    // Universe of one atom: closure, iden, products degenerate sanely.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    Instance inst(vocab, 1);
    EXPECT_TRUE(evalFormula(mkAcyclic(r), inst));
    inst.matrix(0).set(0, 0);
    EXPECT_FALSE(evalFormula(mkAcyclic(r), inst));
    EXPECT_FALSE(evalFormula(mkIrreflexive(r), inst));
    EXPECT_TRUE(evalFormula(mkEqual(mkClosure(r), r), inst));
    EXPECT_TRUE(evalFormula(mkOne(r), inst));
}

} // namespace
} // namespace lts::rel
