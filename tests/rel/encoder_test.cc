/**
 * @file
 * Tests for the gate builder and the symbolic relational encoder.
 *
 * The central property test generates random relational expressions and
 * formulas, pins relation variables to random concrete contents via SAT
 * assumptions, and checks that the symbolic encoding evaluates to exactly
 * what the concrete evaluator computes. This is the soundness anchor for
 * the entire synthesis pipeline.
 */

#include <gtest/gtest.h>

#include <random>

#include "rel/encoder.hh"
#include "rel/eval.hh"

namespace lts::rel
{
namespace
{

TEST(GateBuilderTest, ConstantFolding)
{
    sat::Solver s;
    GateBuilder g(s);
    GLit a = g.mkFreeInput();
    EXPECT_EQ(g.mkAnd(a, kTrue), a);
    EXPECT_EQ(g.mkAnd(kTrue, a), a);
    EXPECT_EQ(g.mkAnd(a, kFalse), kFalse);
    EXPECT_EQ(g.mkAnd(a, a), a);
    EXPECT_EQ(g.mkAnd(a, gNot(a)), kFalse);
    EXPECT_EQ(g.mkOr(a, kTrue), kTrue);
    EXPECT_EQ(g.mkOr(a, kFalse), a);
}

TEST(GateBuilderTest, StructuralHashing)
{
    sat::Solver s;
    GateBuilder g(s);
    GLit a = g.mkFreeInput();
    GLit b = g.mkFreeInput();
    GLit x = g.mkAnd(a, b);
    GLit y = g.mkAnd(b, a);
    EXPECT_EQ(x, y);
    size_t before = g.numAnds();
    (void)g.mkAnd(a, b);
    EXPECT_EQ(g.numAnds(), before);
}

TEST(GateBuilderTest, TseitinSemantics)
{
    // Assert (a & b) | ~c and enumerate: model count must be 5 of 8.
    sat::Solver s;
    GateBuilder g(s);
    sat::Var va = s.newVar(), vb = s.newVar(), vc = s.newVar();
    GLit f = g.mkOr(g.mkAnd(g.mkInput(va), g.mkInput(vb)),
                    gNot(g.mkInput(vc)));
    g.assertTrue(f);
    int models = 0;
    while (s.solve() == sat::SolveResult::Sat) {
        bool a = s.modelValue(va), b = s.modelValue(vb), c = s.modelValue(vc);
        EXPECT_TRUE((a && b) || !c);
        models++;
        sat::Clause block = {sat::Lit(va, a), sat::Lit(vb, b),
                             sat::Lit(vc, c)};
        if (!s.addClause(block))
            break;
    }
    EXPECT_EQ(models, 5);
}

TEST(GateBuilderTest, XorMuxIff)
{
    sat::Solver s;
    GateBuilder g(s);
    sat::Var va = s.newVar(), vb = s.newVar(), vs = s.newVar();
    GLit a = g.mkInput(va), b = g.mkInput(vb), sel = g.mkInput(vs);
    g.assertTrue(g.mkIff(g.mkXor(a, b), g.mkMux(sel, a, b)));
    // xor(a,b) == mux(s,a,b) has solutions; check each returned model.
    int models = 0;
    while (s.solve() == sat::SolveResult::Sat && models < 8) {
        bool A = s.modelValue(va), B = s.modelValue(vb), S = s.modelValue(vs);
        EXPECT_EQ(A != B, S ? A : B);
        models++;
        if (!s.addClause({sat::Lit(va, A), sat::Lit(vb, B), sat::Lit(vs, S)}))
            break;
    }
    EXPECT_EQ(models, 4);
}

TEST(GateBuilderTest, AtMostOne)
{
    sat::Solver s;
    GateBuilder g(s);
    std::vector<sat::Var> vars = {s.newVar(), s.newVar(), s.newVar(),
                                  s.newVar()};
    std::vector<GLit> lits;
    for (auto v : vars)
        lits.push_back(g.mkInput(v));
    g.assertTrue(g.mkAtMostOne(lits));
    int models = 0;
    while (s.solve() == sat::SolveResult::Sat) {
        int set = 0;
        sat::Clause block;
        for (auto v : vars) {
            if (s.modelValue(v))
                set++;
            block.push_back(sat::Lit(v, s.modelValue(v)));
        }
        EXPECT_LE(set, 1);
        models++;
        if (!s.addClause(block))
            break;
    }
    EXPECT_EQ(models, 5); // empty + 4 singletons
}

TEST(GateBuilderTest, AssertFalseMakesUnsat)
{
    sat::Solver s;
    GateBuilder g(s);
    g.assertTrue(kFalse);
    EXPECT_EQ(s.solve(), sat::SolveResult::Unsat);
}

/** Pin every relation cell to the given instance via assumptions. */
std::vector<sat::Lit>
pinInstance(const Vocabulary &vocab, const Encoder &enc, const Instance &inst)
{
    std::vector<sat::Lit> assumptions;
    size_t n = inst.universe();
    for (size_t id = 0; id < vocab.size(); id++) {
        const VarDecl &d = vocab.decl(static_cast<int>(id));
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++) {
                assumptions.push_back(
                    sat::Lit(enc.cellVar(d.id, i), !inst.set(d.id).test(i)));
            }
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    assumptions.push_back(
                        sat::Lit(enc.cellVar(d.id, i, j),
                                 !inst.matrix(d.id).test(i, j)));
                }
            }
        }
    }
    return assumptions;
}

/** Build a random expression tree of the given depth. */
ExprPtr
randomExpr(std::mt19937 &rng, const std::vector<ExprPtr> &rels,
           const std::vector<ExprPtr> &sets, int depth, int want_arity)
{
    if (depth == 0) {
        if (want_arity == 2)
            return rels[rng() % rels.size()];
        return sets[rng() % sets.size()];
    }
    auto sub2 = [&](int d) {
        return randomExpr(rng, rels, sets, d, 2);
    };
    auto sub1 = [&](int d) {
        return randomExpr(rng, rels, sets, d, 1);
    };
    if (want_arity == 2) {
        switch (rng() % 9) {
          case 0:
            return mkUnion(sub2(depth - 1), sub2(depth - 1));
          case 1:
            return mkIntersect(sub2(depth - 1), sub2(depth - 1));
          case 2:
            return mkDiff(sub2(depth - 1), sub2(depth - 1));
          case 3:
            return mkJoin(sub2(depth - 1), sub2(depth - 1));
          case 4:
            return mkTranspose(sub2(depth - 1));
          case 5:
            return mkClosure(sub2(depth - 1));
          case 6:
            return mkProduct(sub1(depth - 1), sub1(depth - 1));
          case 7:
            return mkDomRestrict(sub1(depth - 1), sub2(depth - 1));
          default:
            return mkRanRestrict(sub2(depth - 1), sub1(depth - 1));
        }
    }
    switch (rng() % 4) {
      case 0:
        return mkUnion(sub1(depth - 1), sub1(depth - 1));
      case 1:
        return mkIntersect(sub1(depth - 1), sub1(depth - 1));
      case 2:
        return mkJoin(sub1(depth - 1), sub2(depth - 1));
      default:
        return mkJoin(sub2(depth - 1), sub1(depth - 1));
    }
}

/** Build a random formula over random expressions. */
FormulaPtr
randomFormula(std::mt19937 &rng, const std::vector<ExprPtr> &rels,
              const std::vector<ExprPtr> &sets, int depth)
{
    if (depth == 0) {
        ExprPtr e2 = randomExpr(rng, rels, sets, 1 + rng() % 2, 2);
        switch (rng() % 7) {
          case 0:
            return mkSubset(e2, randomExpr(rng, rels, sets, 1, 2));
          case 1:
            return mkEqual(e2, randomExpr(rng, rels, sets, 1, 2));
          case 2:
            return mkSome(e2);
          case 3:
            return mkNo(e2);
          case 4:
            return mkLone(e2);
          case 5:
            return mkAcyclic(e2);
          default:
            return mkIrreflexive(e2);
        }
    }
    switch (rng() % 4) {
      case 0:
        return mkAnd(randomFormula(rng, rels, sets, depth - 1),
                     randomFormula(rng, rels, sets, depth - 1));
      case 1:
        return mkOr(randomFormula(rng, rels, sets, depth - 1),
                    randomFormula(rng, rels, sets, depth - 1));
      case 2:
        return mkNot(randomFormula(rng, rels, sets, depth - 1));
      default:
        return mkImplies(randomFormula(rng, rels, sets, depth - 1),
                         randomFormula(rng, rels, sets, depth - 1));
    }
}

class EncoderPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EncoderPropertyTest, SymbolicMatchesConcreteOnRandomFormulas)
{
    std::mt19937 rng(GetParam());
    size_t n = 3 + rng() % 3; // universe of 3..5 atoms

    Vocabulary vocab;
    std::vector<ExprPtr> rels = {vocab.declare("p", 2), vocab.declare("q", 2)};
    std::vector<ExprPtr> sets = {vocab.declare("A", 1), vocab.declare("B", 1)};

    sat::Solver solver;
    GateBuilder builder(solver);
    Encoder enc(vocab, n, builder);

    // A batch of random formulas encoded against one shared encoder.
    std::vector<FormulaPtr> formulas;
    std::vector<sat::Lit> indicators;
    for (int f = 0; f < 12; f++) {
        FormulaPtr formula = randomFormula(rng, rels, sets, 1 + rng() % 2);
        formulas.push_back(formula);
        indicators.push_back(builder.lower(enc.encodeFormula(formula)));
    }

    // Try several random instances; for each, pin the cells and compare
    // every formula's indicator literal against concrete evaluation.
    for (int trial = 0; trial < 10; trial++) {
        Instance inst(vocab, n);
        for (size_t id = 0; id < vocab.size(); id++) {
            if (vocab.decl(static_cast<int>(id)).arity == 1) {
                for (size_t i = 0; i < n; i++) {
                    if (rng() & 1)
                        inst.set(static_cast<int>(id)).set(i);
                }
            } else {
                for (size_t i = 0; i < n; i++) {
                    for (size_t j = 0; j < n; j++) {
                        if (rng() % 3 == 0)
                            inst.matrix(static_cast<int>(id)).set(i, j);
                    }
                }
            }
        }
        auto assumptions = pinInstance(vocab, enc, inst);
        ASSERT_EQ(solver.solve(assumptions), sat::SolveResult::Sat);
        for (size_t f = 0; f < formulas.size(); f++) {
            bool want = evalFormula(formulas[f], inst);
            bool got = solver.modelValue(indicators[f]);
            ASSERT_EQ(got, want)
                << "formula: " << formulas[f]->toString() << "\ninstance p:\n"
                << inst.matrix(0).toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RelSolverTest, FindsTotalOrders)
{
    // Count strict total orders over 4 atoms: must be 4! = 24.
    Vocabulary vocab;
    ExprPtr lt = vocab.declare("lt", 2);
    RelSolver solver(vocab, 4);
    solver.addFact(mkTotal(lt, mkUniv()));
    int count = 0;
    sat::SolveResult more = solver.solve();
    while (more == sat::SolveResult::Sat) {
        count++;
        ASSERT_LE(count, 24);
        EXPECT_TRUE(evalFormula(mkTotal(lt, mkUniv()), solver.instance()));
        more = solver.blockAndContinue();
    }
    EXPECT_EQ(count, 24);
}

TEST(RelSolverTest, AcyclicSubsetEnumeration)
{
    // Over 3 atoms: acyclic relations that are subsets of a fixed cycle
    // {0->1,1->2,2->0}: all proper subsets, i.e. 2^3 - 1 = 7.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    BitMatrix cycle(3);
    cycle.set(0, 1);
    cycle.set(1, 2);
    cycle.set(2, 0);
    RelSolver solver(vocab, 3);
    solver.addFact(mkSubset(r, mkConst(cycle)));
    solver.addFact(mkAcyclic(r));
    int count = 0;
    sat::SolveResult more = solver.solve();
    while (more == sat::SolveResult::Sat) {
        count++;
        ASSERT_LE(count, 7);
        more = solver.blockAndContinue();
    }
    EXPECT_EQ(count, 7);
}

TEST(RelSolverTest, UnsatisfiableFacts)
{
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    RelSolver solver(vocab, 3);
    solver.addFact(mkSome(r));
    solver.addFact(mkNo(r));
    EXPECT_EQ(solver.solve(), sat::SolveResult::Unsat);
}

TEST(RelSolverTest, PartialBlockingEnumeratesProjections)
{
    // Two relations; block only on "a": the number of enumerated models
    // equals the number of distinct "a" values (2^4 over 2 atoms).
    Vocabulary vocab;
    vocab.declare("a", 2);
    vocab.declare("b", 2);
    RelSolver solver(vocab, 2);
    int count = 0;
    sat::SolveResult more = solver.solve();
    while (more == sat::SolveResult::Sat) {
        count++;
        ASSERT_LE(count, 16);
        more = solver.blockAndContinue({0});
    }
    EXPECT_EQ(count, 16);
}

TEST(RelSolverTest, InstanceExtractionRoundTrips)
{
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    ExprPtr s = vocab.declare("s", 1);
    BitMatrix want(3);
    want.set(0, 2);
    want.set(1, 1);
    Bitset wantSet(3);
    wantSet.set(2);
    RelSolver solver(vocab, 3);
    solver.addFact(mkEqual(r, mkConst(want)));
    solver.addFact(mkEqual(s, mkConst(wantSet)));
    ASSERT_EQ(solver.solve(), sat::SolveResult::Sat);
    EXPECT_EQ(solver.instance().matrix(0), want);
    EXPECT_EQ(solver.instance().set(1), wantSet);
}

} // namespace
} // namespace lts::rel
// Appended coverage: constructs absent from the random generators above.
namespace lts::rel
{
namespace
{

TEST(EncoderCoverageTest, TotalOrderSymbolicMatchesConcrete)
{
    std::mt19937 rng(4242);
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    ExprPtr s = vocab.declare("s", 1);
    size_t n = 4;

    sat::Solver solver;
    GateBuilder builder(solver);
    Encoder enc(vocab, n, builder);
    FormulaPtr total = mkTotal(r, s);
    sat::Lit indicator = builder.lower(enc.encodeFormula(total));

    for (int trial = 0; trial < 200; trial++) {
        Instance inst(vocab, n);
        for (size_t i = 0; i < n; i++) {
            if (rng() & 1)
                inst.set(1).set(i);
            for (size_t j = 0; j < n; j++) {
                if (rng() % 3 == 0)
                    inst.matrix(0).set(i, j);
            }
        }
        std::vector<sat::Lit> assumptions;
        for (size_t i = 0; i < n; i++) {
            assumptions.push_back(
                sat::Lit(enc.cellVar(1, i), !inst.set(1).test(i)));
            for (size_t j = 0; j < n; j++) {
                assumptions.push_back(sat::Lit(
                    enc.cellVar(0, i, j), !inst.matrix(0).test(i, j)));
            }
        }
        ASSERT_EQ(solver.solve(assumptions), sat::SolveResult::Sat);
        ASSERT_EQ(solver.modelValue(indicator), evalFormula(total, inst))
            << "trial " << trial;
    }
}

TEST(EncoderCoverageTest, RClosureAndOneSymbolicMatchConcrete)
{
    std::mt19937 rng(777);
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    size_t n = 4;

    sat::Solver solver;
    GateBuilder builder(solver);
    Encoder enc(vocab, n, builder);
    FormulaPtr f1 = mkEqual(mkRClosure(r), mkClosure(r) + mkIden());
    FormulaPtr f2 = mkOne(mkRanRestrict(r, mkJoin(r, mkUniv())));
    FormulaPtr f3 = mkSubset(mkJoin(mkUniv(), r), mkJoin(r, mkUniv())) ||
                    mkNo(r);
    sat::Lit l1 = builder.lower(enc.encodeFormula(f1));
    sat::Lit l2 = builder.lower(enc.encodeFormula(f2));
    sat::Lit l3 = builder.lower(enc.encodeFormula(f3));

    for (int trial = 0; trial < 200; trial++) {
        Instance inst(vocab, n);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (rng() % 3 == 0)
                    inst.matrix(0).set(i, j);
            }
        }
        std::vector<sat::Lit> assumptions;
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                assumptions.push_back(sat::Lit(
                    enc.cellVar(0, i, j), !inst.matrix(0).test(i, j)));
            }
        }
        ASSERT_EQ(solver.solve(assumptions), sat::SolveResult::Sat);
        EXPECT_EQ(solver.modelValue(l1), evalFormula(f1, inst));
        EXPECT_EQ(solver.modelValue(l2), evalFormula(f2, inst));
        EXPECT_EQ(solver.modelValue(l3), evalFormula(f3, inst));
    }
}

TEST(EncoderCoverageTest, SolvingForATotalOrderOnASubset)
{
    // Ask the solver for a strict total order on a 2-element subset with
    // the rest untouched: count solutions = (choose the subset is fixed)
    // 2 orders.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    Bitset subset(3);
    subset.set(0);
    subset.set(2);
    RelSolver solver(vocab, 3);
    solver.addFact(mkTotal(r, mkConst(subset)));
    int count = 0;
    sat::SolveResult more = solver.solve();
    while (more == sat::SolveResult::Sat) {
        count++;
        ASSERT_LE(count, 2);
        more = solver.blockAndContinue();
    }
    EXPECT_EQ(count, 2);
}

TEST(RelSolverFactTest, RetractableFactsLayerOverBase)
{
    // Base: r is a subset of a fixed 2-edge relation. Layers: "some r"
    // and "no r" are individually satisfiable over the base but clash.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    BitMatrix allowed(2);
    allowed.set(0, 1);
    allowed.set(1, 0);
    RelSolver solver(vocab, 2);
    solver.addBaseFact(mkSubset(r, mkConst(allowed)));

    FactHandle some = solver.addFact(mkSome(r));
    FactHandle none = solver.addFact(mkNo(r));

    ASSERT_EQ(solver.solveUnder({some}), sat::SolveResult::Sat);
    EXPECT_GT(solver.instance().matrix(0).count(), 0u);
    ASSERT_EQ(solver.solveUnder({none}), sat::SolveResult::Sat);
    EXPECT_EQ(solver.instance().matrix(0).count(), 0u);
    EXPECT_EQ(solver.solveUnder({some, none}), sat::SolveResult::Unsat);
    // solve() activates every live layer.
    EXPECT_EQ(solver.solve(), sat::SolveResult::Unsat);

    solver.retract(none);
    ASSERT_EQ(solver.solve(), sat::SolveResult::Sat);
    EXPECT_GT(solver.instance().matrix(0).count(), 0u);
}

TEST(RelSolverFactTest, GuardedBlockingClausesDieWithTheirLayer)
{
    // Enumerate all 3 non-empty subsets of a 2-edge relation under a
    // layer, retract it, re-layer the same fact: the count repeats,
    // proving the layer's blocking clauses were retired with it.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    BitMatrix allowed(2);
    allowed.set(0, 1);
    allowed.set(1, 0);
    RelSolver solver(vocab, 2);
    solver.addBaseFact(mkSubset(r, mkConst(allowed)));

    for (int round = 0; round < 2; round++) {
        FactHandle layer = solver.addFact(mkSome(r));
        int count = 0;
        sat::SolveResult res = solver.solveUnder({layer});
        while (res == sat::SolveResult::Sat) {
            count++;
            ASSERT_LE(count, 3);
            solver.blockModel({}, layer);
            res = solver.solveUnder({layer});
        }
        EXPECT_EQ(count, 3) << "round " << round;
        solver.retract(layer);
    }
}

TEST(RelSolverFactTest, FalseFactDeadensOnlyItsLayer)
{
    // A layer whose formula lowers to constant-false must make queries
    // under it Unsat without poisoning the solver for other layers.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    RelSolver solver(vocab, 2);
    FactHandle absurd = solver.addFact(mkFalse());
    FactHandle fine = solver.addFact(mkNo(r));
    EXPECT_EQ(solver.solveUnder({absurd}), sat::SolveResult::Unsat);
    EXPECT_EQ(solver.solveUnder({fine}), sat::SolveResult::Sat);
    solver.retract(absurd);
    EXPECT_EQ(solver.solve(), sat::SolveResult::Sat);
}

} // namespace
} // namespace lts::rel
