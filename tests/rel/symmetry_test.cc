/**
 * @file
 * Tests for the symmetry-breaking layer: interchangeable-atom partition
 * detection, generator construction, and the lex-leader / forbidden-
 * pattern lowering in RelSolver::addSymmetryBreaking.
 *
 * The enumeration tests count SAT models directly: with the full
 * symmetric group broken over one unary relation, exactly the
 * lex-least member of each orbit (the non-decreasing bit vectors)
 * must survive.
 */

#include <gtest/gtest.h>

#include "rel/encoder.hh"
#include "rel/symmetry.hh"

namespace lts::rel
{
namespace
{

/** Enumerate all models of the solver, blocking every relation. */
int
countModels(RelSolver &solver)
{
    int models = 0;
    while (solver.solve() == sat::SolveResult::Sat) {
        models++;
        solver.blockModel();
        if (models > 64)
            break; // runaway guard; the asserts below will fail loudly
    }
    return models;
}

TEST(SymmetryDetectTest, NoConstantsOneClass)
{
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    std::vector<FormulaPtr> facts = {mkIrreflexive(r)};
    auto classes = detectInterchangeable(facts, 4);
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(classes[0], (std::vector<size_t>{0, 1, 2, 3}));
    // One class of k atoms -> k-1 adjacent transpositions.
    auto gens = unconditionalGenerators(classes);
    ASSERT_EQ(gens.size(), 3u);
    EXPECT_EQ(gens[0].perm, (std::vector<size_t>{1, 0, 2, 3}));
    EXPECT_TRUE(gens[0].conditions.empty());
}

TEST(SymmetryDetectTest, UnaryConstantSplitsClasses)
{
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 1);
    Bitset marked(4);
    marked.set(0);
    marked.set(1);
    std::vector<FormulaPtr> facts = {mkSubset(r, mkConst(marked))};
    auto classes = detectInterchangeable(facts, 4);
    ASSERT_EQ(classes.size(), 2u);
    EXPECT_EQ(classes[0], (std::vector<size_t>{0, 1}));
    EXPECT_EQ(classes[1], (std::vector<size_t>{2, 3}));
}

TEST(SymmetryDetectTest, TotalOrderConstantKillsAllSymmetry)
{
    // An index-order constant (i < j) distinguishes every pair of
    // atoms, which is exactly why the memory-model layer needs
    // conditional generators instead of the generic detector.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    BitMatrix lt(3);
    for (size_t i = 0; i < 3; i++) {
        for (size_t j = i + 1; j < 3; j++)
            lt.set(i, j);
    }
    std::vector<FormulaPtr> facts = {mkSubset(r, mkConst(lt))};
    auto classes = detectInterchangeable(facts, 3);
    EXPECT_EQ(classes.size(), 3u);
    EXPECT_TRUE(unconditionalGenerators(classes).empty());
    EXPECT_TRUE(specFromFacts(vocab, facts, 3).empty());
}

TEST(SymmetryLexLeaderTest, FullGroupKeepsNonDecreasingVectors)
{
    // One free unary relation over 3 interchangeable atoms: 8 raw
    // models in 4 orbits (by popcount). The lex chain orders false
    // before true with cell 0 most significant, so each orbit's
    // survivor is its non-decreasing bit vector.
    Vocabulary vocab;
    vocab.declare("r", 1);
    SymmetrySpec spec = specFromFacts(vocab, {}, 3);
    ASSERT_EQ(spec.generators.size(), 2u);

    RelSolver plain(vocab, 3);
    EXPECT_EQ(countModels(plain), 8);

    RelSolver solver(vocab, 3);
    SymmetryStats stats;
    solver.addSymmetryBreaking(spec, &stats);
    EXPECT_EQ(stats.generators, 2u);
    EXPECT_GT(stats.clauses, 0u);
    int models = 0;
    const VarDecl &r = vocab.find("r");
    while (solver.solve() == sat::SolveResult::Sat) {
        models++;
        const Bitset &bits = solver.instance().set(r.id);
        for (size_t i = 0; i + 1 < 3; i++)
            EXPECT_LE(bits.test(i), bits.test(i + 1));
        solver.blockModel();
    }
    EXPECT_EQ(models, 4);
}

TEST(SymmetryLexLeaderTest, VacuousGuardPrunesNothing)
{
    // A generator guarded on a cell that a fact forces false must not
    // bind: all 4 raw models of the free relation survive.
    Vocabulary vocab;
    ExprPtr g = vocab.declare("g", 1);
    vocab.declare("r", 1);
    SymmetrySpec spec;
    spec.lexVarIds = {vocab.find("r").id};
    ConditionalPerm swap01;
    swap01.perm = {1, 0};
    swap01.conditions = {{vocab.find("g").id, 0, 0, true}};
    spec.generators.push_back(swap01);

    RelSolver solver(vocab, 2);
    solver.addBaseFact(mkNo(g));
    solver.addSymmetryBreaking(spec);
    EXPECT_EQ(countModels(solver), 4);
}

TEST(SymmetryLexLeaderTest, ActiveGuardBinds)
{
    // Same generator, but with the guard cell forced true: the swap
    // binds and halves the asymmetric models (r={0} dies, r={1} lives).
    Vocabulary vocab;
    ExprPtr g = vocab.declare("g", 1);
    vocab.declare("r", 1);
    SymmetrySpec spec;
    spec.lexVarIds = {vocab.find("r").id};
    ConditionalPerm swap01;
    swap01.perm = {1, 0};
    swap01.conditions = {{vocab.find("g").id, 0, 0, true}};
    spec.generators.push_back(swap01);

    Bitset all(2);
    all.set(0);
    all.set(1);
    RelSolver solver(vocab, 2);
    solver.addBaseFact(mkEqual(g, mkConst(all)));
    solver.addSymmetryBreaking(spec);
    EXPECT_EQ(countModels(solver), 3);
}

TEST(SymmetryForbiddenTest, PatternLowersToClause)
{
    Vocabulary vocab;
    vocab.declare("r", 1);
    SymmetrySpec spec;
    spec.forbidden.push_back({{vocab.find("r").id, 0, 0, true}});

    RelSolver solver(vocab, 2);
    SymmetryStats stats;
    solver.addSymmetryBreaking(spec, &stats);
    EXPECT_EQ(stats.forbidden, 1u);
    int models = 0;
    const VarDecl &r = vocab.find("r");
    while (solver.solve() == sat::SolveResult::Sat) {
        models++;
        EXPECT_FALSE(solver.instance().set(r.id).test(0));
        solver.blockModel();
    }
    EXPECT_EQ(models, 2);
}

TEST(SymmetryLayerTest, RetractRestoresPrunedModels)
{
    // addSymmetryBreaking installs a retractable layer: after retract,
    // the full model space must be visible again (this is what lets
    // witness-resolution queries exclude the SBP).
    Vocabulary vocab;
    vocab.declare("r", 1);
    SymmetrySpec spec = specFromFacts(vocab, {}, 3);

    RelSolver solver(vocab, 3);
    FactHandle h = solver.addSymmetryBreaking(spec);
    EXPECT_EQ(countModels(solver), 4);

    RelSolver fresh(vocab, 3);
    FactHandle h2 = fresh.addSymmetryBreaking(spec);
    fresh.retract(h2);
    EXPECT_EQ(countModels(fresh), 8);
    (void)h;
}

} // namespace
} // namespace lts::rel
