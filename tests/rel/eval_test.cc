/**
 * @file
 * Unit tests for the relational expression/formula AST and its concrete
 * evaluator.
 */

#include <gtest/gtest.h>

#include "rel/eval.hh"

namespace lts::rel
{
namespace
{

/** Fixture with a small vocabulary bound to hand-picked contents. */
class EvalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        r = vocab.declare("r", 2);
        s = vocab.declare("s", 2);
        a = vocab.declare("a", 1);
        b = vocab.declare("b", 1);
        inst = Instance(vocab, n);

        // r: 0->1, 1->2 ; s: 0->2, 2->2
        inst.matrix(0).set(0, 1);
        inst.matrix(0).set(1, 2);
        inst.matrix(1).set(0, 2);
        inst.matrix(1).set(2, 2);
        // a = {0, 1}; b = {1, 3}
        inst.set(2).set(0);
        inst.set(2).set(1);
        inst.set(3).set(1);
        inst.set(3).set(3);
    }

    static constexpr size_t n = 4;
    Vocabulary vocab;
    ExprPtr r, s, a, b;
    Instance inst;
};

TEST_F(EvalTest, VarLookup)
{
    EXPECT_TRUE(evalMatrix(r, inst).test(0, 1));
    EXPECT_FALSE(evalMatrix(r, inst).test(1, 0));
    EXPECT_TRUE(evalSet(a, inst).test(0));
    EXPECT_FALSE(evalSet(a, inst).test(3));
}

TEST_F(EvalTest, UnionIntersectDiff)
{
    auto u = evalMatrix(r + s, inst);
    EXPECT_EQ(u.count(), 4u);
    auto i = evalMatrix(r & s, inst);
    EXPECT_EQ(i.count(), 0u);
    auto d = evalMatrix((r + s) - s, inst);
    EXPECT_EQ(d, evalMatrix(r, inst));

    auto su = evalSet(a + b, inst);
    EXPECT_EQ(su.count(), 3u);
    auto si = evalSet(a & b, inst);
    EXPECT_EQ(si.count(), 1u);
    EXPECT_TRUE(si.test(1));
}

TEST_F(EvalTest, JoinComposition)
{
    // r.r relates 0->2 only.
    auto rr = evalMatrix(r / r, inst);
    EXPECT_EQ(rr.count(), 1u);
    EXPECT_TRUE(rr.test(0, 2));
}

TEST_F(EvalTest, JoinSetRelIsImage)
{
    // a.r = image of {0,1} under r = {1,2}.
    auto img = evalSet(a / r, inst);
    EXPECT_EQ(img.count(), 2u);
    EXPECT_TRUE(img.test(1));
    EXPECT_TRUE(img.test(2));
}

TEST_F(EvalTest, JoinRelSetIsPreimage)
{
    // r.b = atoms whose r-successor is in {1,3} = {0}.
    auto pre = evalSet(r / b, inst);
    EXPECT_EQ(pre.count(), 1u);
    EXPECT_TRUE(pre.test(0));
}

TEST_F(EvalTest, TransposeAndClosure)
{
    auto t = evalMatrix(mkTranspose(r), inst);
    EXPECT_TRUE(t.test(1, 0));
    EXPECT_TRUE(t.test(2, 1));

    auto c = evalMatrix(mkClosure(r), inst);
    EXPECT_TRUE(c.test(0, 2));
    EXPECT_EQ(c.count(), 3u);

    auto rc = evalMatrix(mkRClosure(r), inst);
    EXPECT_EQ(rc.count(), 3u + n);
}

TEST_F(EvalTest, ProductAndRestriction)
{
    auto p = evalMatrix(mkProduct(a, b), inst);
    EXPECT_EQ(p.count(), 4u); // {0,1} x {1,3}
    EXPECT_TRUE(p.test(0, 3));

    auto dom = evalMatrix(mkDomRestrict(a, r), inst);
    EXPECT_EQ(dom.count(), 2u); // both r edges start in {0,1}

    auto ran = evalMatrix(mkRanRestrict(r, b), inst);
    EXPECT_EQ(ran.count(), 1u); // only 0->1 ends in {1,3}
    EXPECT_TRUE(ran.test(0, 1));
}

TEST_F(EvalTest, IdenUnivNone)
{
    EXPECT_EQ(evalMatrix(mkIden(), inst).count(), n);
    EXPECT_EQ(evalSet(mkUniv(), inst).count(), n);
    EXPECT_EQ(evalSet(mkNone(1), inst).count(), 0u);
    EXPECT_EQ(evalMatrix(mkNone(2), inst).count(), 0u);
}

TEST_F(EvalTest, ConstExpr)
{
    Bitset cs(n);
    cs.set(2);
    EXPECT_TRUE(evalSet(mkConst(cs), inst).test(2));

    BitMatrix cm(n);
    cm.set(3, 0);
    EXPECT_TRUE(evalMatrix(mkConst(cm), inst).test(3, 0));
}

TEST_F(EvalTest, SubsetEqualFormulas)
{
    EXPECT_TRUE(evalFormula(mkSubset(r, r + s), inst));
    EXPECT_FALSE(evalFormula(mkSubset(r + s, r), inst));
    EXPECT_TRUE(evalFormula(mkEqual(r, r), inst));
    EXPECT_FALSE(evalFormula(mkEqual(r, s), inst));
    EXPECT_TRUE(evalFormula(mkSubset(a & b, a), inst));
}

TEST_F(EvalTest, MultiplicityFormulas)
{
    EXPECT_TRUE(evalFormula(mkSome(r), inst));
    EXPECT_FALSE(evalFormula(mkNo(r), inst));
    EXPECT_TRUE(evalFormula(mkNo(r & s), inst));
    EXPECT_TRUE(evalFormula(mkLone(r & s), inst));
    EXPECT_TRUE(evalFormula(mkLone(r / r), inst));
    EXPECT_TRUE(evalFormula(mkOne(r / r), inst));
    EXPECT_FALSE(evalFormula(mkOne(r), inst));
}

TEST_F(EvalTest, AcyclicIrreflexive)
{
    EXPECT_TRUE(evalFormula(mkAcyclic(r), inst));
    EXPECT_FALSE(evalFormula(mkAcyclic(s), inst)); // s has 2->2
    EXPECT_FALSE(evalFormula(mkIrreflexive(s), inst));
    EXPECT_TRUE(evalFormula(mkIrreflexive(r), inst));
}

TEST_F(EvalTest, TotalOrderFormula)
{
    // Build a strict total order 0<1<2<3 and check Total holds on univ.
    Vocabulary v2;
    ExprPtr lt = v2.declare("lt", 2);
    Instance i2(v2, 4);
    for (size_t i = 0; i < 4; i++) {
        for (size_t j = i + 1; j < 4; j++)
            i2.matrix(0).set(i, j);
    }
    EXPECT_TRUE(evalFormula(mkTotal(lt, mkUniv()), i2));

    // Remove one pair: no longer total.
    i2.matrix(0).set(0, 3, false);
    EXPECT_FALSE(evalFormula(mkTotal(lt, mkUniv()), i2));
}

TEST_F(EvalTest, TotalOrderConfinedToSet)
{
    Vocabulary v2;
    ExprPtr lt = v2.declare("lt", 2);
    ExprPtr set = v2.declare("set", 1);
    Instance i2(v2, 4);
    // Order only {1, 2}: 1<2, and membership {1,2}.
    i2.matrix(0).set(1, 2);
    i2.set(1).set(1);
    i2.set(1).set(2);
    EXPECT_TRUE(evalFormula(mkTotal(lt, set), i2));
    // An edge out of the set breaks confinement.
    i2.matrix(0).set(0, 1);
    EXPECT_FALSE(evalFormula(mkTotal(lt, set), i2));
}

TEST_F(EvalTest, Connectives)
{
    auto t = mkTrue();
    auto f = mkFalse();
    EXPECT_TRUE(evalFormula(t && t, inst));
    EXPECT_FALSE(evalFormula(t && f, inst));
    EXPECT_TRUE(evalFormula(t || f, inst));
    EXPECT_TRUE(evalFormula(!f, inst));
    EXPECT_TRUE(evalFormula(mkImplies(f, f), inst));
    EXPECT_FALSE(evalFormula(mkImplies(t, f), inst));
    EXPECT_TRUE(evalFormula(mkIff(f, f), inst));
    EXPECT_FALSE(evalFormula(mkIff(t, f), inst));
}

TEST_F(EvalTest, ArityChecksThrow)
{
    EXPECT_THROW(mkUnion(r, a), std::invalid_argument);
    EXPECT_THROW(mkTranspose(a), std::invalid_argument);
    EXPECT_THROW(mkProduct(r, a), std::invalid_argument);
    EXPECT_THROW(mkJoin(a, b), std::invalid_argument);
    EXPECT_THROW(mkAcyclic(a), std::invalid_argument);
    EXPECT_THROW(mkSubset(a, r), std::invalid_argument);
    EXPECT_THROW(mkDomRestrict(r, r), std::invalid_argument);
}

TEST_F(EvalTest, VocabularyLookupAndRedeclare)
{
    EXPECT_TRUE(vocab.contains("rf") == false);
    EXPECT_EQ(vocab.find("r").arity, 2);
    EXPECT_EQ(vocab.expr("a")->varId, 2);
    EXPECT_THROW(vocab.find("zzz"), std::out_of_range);
    Vocabulary v2;
    v2.declare("x", 1);
    EXPECT_THROW(v2.declare("x", 2), std::invalid_argument);
}

TEST_F(EvalTest, ToStringSmoke)
{
    auto e = mkDomRestrict(a, mkClosure(r + s));
    EXPECT_EQ(e->toString(), "(a <: ^(r + s))");
    auto f = mkAcyclic(r) && mkNo(s);
    EXPECT_NE(f->toString().find("acyclic[r]"), std::string::npos);
}

// The "fr" construction used throughout the paper:
//   fr = (Read <: address.~address :> Write) - ~rf.*~co
// Exercised here on a tiny hand-built execution.
TEST(PaperExprTest, FromReadsDefinition)
{
    Vocabulary vocab;
    ExprPtr read = vocab.declare("Read", 1);
    ExprPtr write = vocab.declare("Write", 1);
    ExprPtr same_addr = vocab.declare("sameAddr", 2);
    ExprPtr rf = vocab.declare("rf", 2);
    ExprPtr co = vocab.declare("co", 2);

    // Universe: w0 (init-like store), w1 (later store), r2 (read).
    Instance inst(vocab, 3);
    inst.set(1).set(0);
    inst.set(1).set(1);
    inst.set(0).set(2);
    for (size_t i = 0; i < 3; i++) {
        for (size_t j = 0; j < 3; j++)
            inst.matrix(2).set(i, j); // all same address
    }
    inst.matrix(3).set(0, 2); // r2 reads from w0
    inst.matrix(4).set(0, 1); // co: w0 -> w1

    ExprPtr fr =
        mkDiff(mkRanRestrict(mkDomRestrict(read, same_addr), write),
               mkJoin(mkTranspose(rf), mkRClosure(mkTranspose(co))));
    auto m = evalMatrix(fr, inst);
    // r2 read w0 which is co-before w1, so fr relates r2 -> w1 only.
    EXPECT_TRUE(m.test(2, 1));
    EXPECT_FALSE(m.test(2, 0));
    EXPECT_EQ(m.count(), 1u);
}

} // namespace
} // namespace lts::rel
