/**
 * @file
 * Relational-layer tests for the SAT preprocessing pass: simplifyBase()
 * must leave the instance-enumeration semantics of a RelSolver
 * untouched — same instances, same order, same lex-minimal completions
 * — while actually eliminating Tseitin internals. The frozen-variable
 * protocol (cell variables, layer selectors) and the gate builder's
 * re-lowering of eliminated cached gates are what these tests pin down.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "rel/encoder.hh"
#include "rel/eval.hh"

namespace lts::rel
{
namespace
{

std::string
matrixKey(const BitMatrix &m)
{
    std::string key;
    for (size_t i = 0; i < m.size(); i++) {
        for (size_t j = 0; j < m.size(); j++)
            key += m.test(i, j) ? '1' : '0';
    }
    return key;
}

/**
 * Enumerate every instance of relation 0. Returned as a set: the pass
 * changes the clause database and therefore the search trajectory, so
 * the *order* of discovery may differ — the synthesizer's byte-identity
 * rests on its canonical merge, not on enumeration order. The *set*
 * must be exactly preserved.
 */
std::set<std::string>
enumerate(RelSolver &solver)
{
    std::set<std::string> keys;
    sat::SolveResult more = solver.solve();
    while (more == sat::SolveResult::Sat) {
        EXPECT_TRUE(keys.insert(matrixKey(solver.instance().matrix(0))).second)
            << "instance enumerated twice";
        more = solver.blockAndContinue();
    }
    return keys;
}

TEST(RelSimplifyTest, BaseFactEncodingShrinksAndEnumerationIsUnchanged)
{
    // Acyclic subsets of a fixed 3-cycle, with and without the pass:
    // identical enumeration (content *and* order), fewer live clauses.
    BitMatrix cycle(3);
    cycle.set(0, 1);
    cycle.set(1, 2);
    cycle.set(2, 0);

    auto build = [&](RelSolver &solver, const ExprPtr &r) {
        solver.addBaseFact(mkSubset(r, mkConst(cycle)));
        solver.addBaseFact(mkAcyclic(r));
    };
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);

    RelSolver plain(vocab, 3);
    build(plain, r);
    RelSolver simplified(vocab, 3);
    build(simplified, r);
    ASSERT_TRUE(simplified.simplifyBase());
    EXPECT_GT(simplified.satSolver().stats().eliminatedVars, 0u);
    EXPECT_LT(simplified.satSolver().numClauses(),
              plain.satSolver().numClauses());

    EXPECT_EQ(enumerate(simplified), enumerate(plain));
}

TEST(RelSimplifyTest, FactLayersAddedAfterSimplifyRelowerEliminatedGates)
{
    // The second fact reuses sub-expressions of the base fact, so its
    // lowering hits gate-builder cache entries whose SAT variables were
    // eliminated; the builder must re-lower them instead of emitting
    // clauses over dead variables.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    ExprPtr common = mkJoin(r, r); // shared cone between base and layer

    RelSolver solver(vocab, 3);
    solver.addBaseFact(mkSubset(common, r)); // transitivity
    ASSERT_TRUE(solver.simplifyBase());

    FactHandle layer = solver.addFact(mkSome(common));
    FactHandle empty = solver.addFact(mkNo(r));

    // With both layers: transitive, r;r nonempty, r empty — contradiction.
    EXPECT_EQ(solver.solveUnder({layer, empty}), sat::SolveResult::Unsat);
    // Dropping the empty layer admits e.g. a total reflexive relation.
    ASSERT_EQ(solver.solveUnder({layer}), sat::SolveResult::Sat);
    EXPECT_TRUE(
        evalFormula(mkAnd(mkSubset(common, r), mkSome(common)),
                    solver.instance()));
    solver.retract(layer);
    EXPECT_EQ(solver.solveUnder({empty}), sat::SolveResult::Sat);
}

TEST(RelSimplifyTest, PinAndMinimizeAgreesAfterSimplify)
{
    // pinAndMinimize must produce the same lex-minimal completion with
    // and without preprocessing — the witness-resolution determinism the
    // synthesizer's byte-identity contract needs.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    ExprPtr s = vocab.declare("s", 2);

    auto build = [&](RelSolver &solver) {
        solver.addBaseFact(mkSubset(s, r));
        solver.addBaseFact(mkIrreflexive(r));
    };
    RelSolver plain(vocab, 3);
    build(plain);
    RelSolver simplified(vocab, 3);
    build(simplified);
    ASSERT_TRUE(simplified.simplifyBase());

    // Pin r to a fixed relation and ask for the minimal s-completion.
    Instance pin(vocab, 3);
    pin.matrix(0).set(0, 1);
    pin.matrix(0).set(1, 2);

    ASSERT_TRUE(plain.pinAndMinimize(pin, {0}, {}));
    ASSERT_TRUE(simplified.pinAndMinimize(pin, {0}, {}));
    EXPECT_EQ(plain.instance().matrix(0), simplified.instance().matrix(0));
    EXPECT_EQ(plain.instance().matrix(1), simplified.instance().matrix(1));
    // Minimal completion of an unconstrained-below s is empty.
    EXPECT_TRUE(simplified.instance().matrix(1).none());
}

TEST(RelSimplifyTest, SymmetryBreakingComposesWithSimplify)
{
    // The SBP layer is installed after preprocessing (its gates lower
    // fresh cones over frozen cell variables); canonical enumeration
    // must agree with the unsimplified solver's.
    Vocabulary vocab;
    ExprPtr r = vocab.declare("r", 2);
    // All three atoms interchangeable: adjacent-transposition generators.
    SymmetrySpec spec;
    spec.lexVarIds = {0};
    spec.generators.push_back({{1, 0, 2}, {}});
    spec.generators.push_back({{0, 2, 1}, {}});

    auto run = [&](bool simplify) {
        RelSolver solver(vocab, 3);
        solver.addBaseFact(mkIrreflexive(r));
        if (simplify)
            EXPECT_TRUE(solver.simplifyBase());
        solver.addSymmetryBreaking(spec);
        return enumerate(solver);
    };
    EXPECT_EQ(run(true), run(false));
}

} // namespace
} // namespace lts::rel
