/**
 * @file
 * Tests for the C++11 stress-harness emitter: structural checks on the
 * generated program text and consistency with the herd exporter's
 * write-value convention. (Compile-and-run coverage lives in the
 * interop ctest, which drives a real compiler.)
 */

#include <gtest/gtest.h>

#include "litmus/cxx.hh"
#include "litmus/herd.hh"

namespace lts::litmus
{
namespace
{

LitmusTest
mpRelAcq()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP+rel+acq");
}

TEST(CxxTest, HarnessHasExpectedStructure)
{
    std::string s = writeCxxHarness(mpRelAcq());
    EXPECT_NE(s.find("#include <atomic>"), std::string::npos);
    EXPECT_NE(s.find("std::atomic<int> x(0);"), std::string::npos);
    EXPECT_NE(s.find("std::atomic<int> y(0);"), std::string::npos);
    EXPECT_NE(s.find("class Barrier"), std::string::npos);
    EXPECT_NE(s.find("void thread0()"), std::string::npos);
    EXPECT_NE(s.find("void thread1()"), std::string::npos);
    EXPECT_NE(s.find("std::memory_order_release"), std::string::npos);
    EXPECT_NE(s.find("std::memory_order_acquire"), std::string::npos);
    EXPECT_NE(s.find("int main("), std::string::npos);
    // The forbidden outcome is checked and drives the exit code.
    EXPECT_NE(s.find("FORBIDDEN"), std::string::npos);
    EXPECT_NE(s.find("return 1"), std::string::npos);
}

TEST(CxxTest, ValuesMatchHerdConvention)
{
    LitmusTest t = mpRelAcq();
    auto values = herdWriteValues(t);
    std::string s = writeCxxHarness(t);
    // Store statements use the same co-position values the .litmus
    // exporter assigns, so one observed tuple means the same execution
    // in both artifacts.
    EXPECT_NE(s.find("x.store(" + std::to_string(values[0])),
              std::string::npos);
    EXPECT_NE(s.find("y.store(" + std::to_string(values[1])),
              std::string::npos);
}

TEST(CxxTest, ConsumePromotedToAcquire)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w = b.write(t0, "x", MemOrder::Release);
    int t1 = b.newThread();
    int r = b.read(t1, "x", MemOrder::Consume);
    b.readsFrom(w, r);
    std::string s = writeCxxHarness(b.build("consume"));
    EXPECT_EQ(s.find("memory_order_consume"), std::string::npos);
    EXPECT_NE(s.find("std::memory_order_acquire"), std::string::npos);
}

TEST(CxxTest, NoForbiddenMeansNoWitnessExit)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.read(t0, "x");
    std::string s = writeCxxHarness(b.build("no-outcome"));
    // Without a forbidden outcome the harness only reports a histogram.
    EXPECT_EQ(s.find("FORBIDDEN"), std::string::npos);
    EXPECT_EQ(s.find("return 1"), std::string::npos);
}

TEST(CxxTest, EmitterIsDeterministic)
{
    LitmusTest t = mpRelAcq();
    EXPECT_EQ(writeCxxHarness(t), writeCxxHarness(t));
}

TEST(CxxTest, IterationDefaultIsConfigurable)
{
    CxxOptions opt;
    opt.defaultIterations = 12345;
    std::string s = writeCxxHarness(mpRelAcq(), opt);
    EXPECT_NE(s.find("12345"), std::string::npos);
}

} // namespace
} // namespace lts::litmus
