/**
 * @file
 * Canonicalizer tests, including the Figure 9 symmetry example and the
 * Figure 14 WWC blind spot of the paper's algorithm.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "litmus/print.hh"

namespace lts::litmus
{
namespace
{

/** The first test of Figure 9. */
LitmusTest
buildFig9a()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int w_y = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int r_y = b.read(t1, "y", MemOrder::Acquire);
    int r_x = b.read(t1, "x");
    b.readsFrom(w_y, r_y);
    b.readsInitial(r_x);
    return b.build("fig9a");
}

/** The second test of Figure 9: threads and addresses swapped. */
LitmusTest
buildFig9b()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r_x = b.read(t0, "x", MemOrder::Acquire);
    int r_y = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int w_x = b.write(t1, "x", MemOrder::Release);
    b.readsFrom(w_x, r_x);
    b.readsInitial(r_y);
    return b.build("fig9b");
}

TEST(CanonTest, Figure9SymmetricTestsMerge)
{
    LitmusTest a = buildFig9a();
    LitmusTest bb = buildFig9b();
    EXPECT_NE(staticSerialize(a), staticSerialize(bb));
    for (CanonMode mode : {CanonMode::Paper, CanonMode::Exact}) {
        EXPECT_EQ(canonicalHash(a, mode), canonicalHash(bb, mode))
            << "mode " << static_cast<int>(mode);
        EXPECT_EQ(staticSerialize(canonicalize(a, mode)),
                  staticSerialize(canonicalize(bb, mode)));
    }
}

TEST(CanonTest, CanonicalFormIsValidAndIdempotent)
{
    LitmusTest a = buildFig9a();
    for (CanonMode mode : {CanonMode::Paper, CanonMode::Exact}) {
        LitmusTest c = canonicalize(a, mode);
        EXPECT_EQ(c.validate(), "");
        LitmusTest cc = canonicalize(c, mode);
        EXPECT_EQ(staticSerialize(c), staticSerialize(cc));
    }
}

TEST(CanonTest, OutcomeIsRemappedWithTheTest)
{
    LitmusTest a = buildFig9a();
    LitmusTest b = buildFig9b();
    LitmusTest ca = canonicalize(a, CanonMode::Exact);
    LitmusTest cb = canonicalize(b, CanonMode::Exact);
    // Both canonical forms must still have a valid forbidden outcome with
    // the same observable shape (one read sees 1, the other sees 0).
    EXPECT_EQ(ca.validate(), "");
    EXPECT_EQ(cb.validate(), "");
    EXPECT_EQ(fullSerialize(ca), fullSerialize(cb));
}

/**
 * One WWC variant (Figure 14).
 *
 * WWC: Tw: St [x],2 ; Ta: Ld r0=[x]; St [y],1 ; Tb: Ld r1=[y]; St [x],1
 * with forbidden outcome r0=2, r1=1, [x]=2 (co: St[x],1 -> St[x],2).
 * Threads Ta and Tb have identical local load/store patterns; the two
 * variants differ only in which of them is declared first, which is the
 * tie the paper's thread-hash sort cannot break.
 */
LitmusTest
buildWwc(bool swap_readers)
{
    TestBuilder b;
    int t_first = b.newThread();
    int t_second = b.newThread();
    int tw = b.newThread();
    int ta = swap_readers ? t_second : t_first; // Ld x; St y
    int tb = swap_readers ? t_first : t_second; // Ld y; St x

    int w_x2 = b.write(tw, "x");
    int r_x = b.read(ta, "x");
    int w_y = b.write(ta, "y");
    int r_y = b.read(tb, "y");
    int w_x1 = b.write(tb, "x");
    b.dataDepend(r_x, w_y);
    b.dataDepend(r_y, w_x1);
    b.readsFrom(w_x2, r_x);
    b.readsFrom(w_y, r_y);
    b.coOrder(w_x1, w_x2);
    return b.build(swap_readers ? "WWC-b" : "WWC-a");
}

TEST(CanonTest, PaperModeMissesWwcSymmetry)
{
    // Threads 1 and 2 of WWC have identical local load/store patterns, so
    // the paper's thread-hash sort cannot distinguish the two variants —
    // the documented redundancy of Figure 14.
    LitmusTest a = buildWwc(false);
    LitmusTest b = buildWwc(true);
    EXPECT_NE(canonicalHash(a, CanonMode::Paper),
              canonicalHash(b, CanonMode::Paper));
}

TEST(CanonTest, ExactModeMergesWwcSymmetry)
{
    LitmusTest a = buildWwc(false);
    LitmusTest b = buildWwc(true);
    EXPECT_EQ(canonicalHash(a, CanonMode::Exact),
              canonicalHash(b, CanonMode::Exact));
}

TEST(CanonTest, DifferentTestsStayDifferent)
{
    LitmusTest mp = buildFig9a();
    LitmusTest wwc = buildWwc(false);
    for (CanonMode mode : {CanonMode::Paper, CanonMode::Exact}) {
        EXPECT_NE(canonicalHash(mp, mode), canonicalHash(wwc, mode));
    }
}

TEST(CanonTest, MemoryOrderIsPartOfIdentity)
{
    // MP with acquire/release differs from plain MP (Section 5.1: the
    // canonicalizer incorporates instruction features).
    TestBuilder b1;
    int t0 = b1.newThread();
    b1.write(t0, "x");
    int w = b1.write(t0, "y");
    int t1 = b1.newThread();
    int r = b1.read(t1, "y");
    b1.read(t1, "x");
    b1.readsFrom(w, r);
    LitmusTest plain = b1.build("mp-plain");

    LitmusTest rel_acq = buildFig9a();
    for (CanonMode mode : {CanonMode::Paper, CanonMode::Exact}) {
        EXPECT_NE(canonicalHash(plain, mode), canonicalHash(rel_acq, mode));
    }
}

TEST(CanonTest, DependenciesArePartOfIdentity)
{
    auto make = [](bool with_dep) {
        TestBuilder b;
        int t0 = b.newThread();
        int r = b.read(t0, "x");
        int w = b.write(t0, "y");
        if (with_dep)
            b.dataDepend(r, w);
        return b.build("t");
    };
    EXPECT_NE(canonicalHash(make(true), CanonMode::Exact),
              canonicalHash(make(false), CanonMode::Exact));
}

TEST(CanonTest, PermuteThreadsExplicit)
{
    LitmusTest a = buildFig9a();
    LitmusTest p = permuteThreads(a, {1, 0});
    EXPECT_EQ(p.validate(), "");
    // Thread 0 of the permuted test is the reader thread.
    EXPECT_TRUE(p.events[0].isRead());
    // Its first-read location is renamed to 0.
    EXPECT_EQ(p.events[0].loc, 0);
    // Round trip restores the original.
    LitmusTest back = permuteThreads(p, {1, 0});
    EXPECT_EQ(staticSerialize(back), staticSerialize(a));
}

TEST(CanonTest, ThreeThreadPermutationsAllMerge)
{
    // All 6 thread orders of WRC must map to one canonical form in exact
    // mode.
    auto wrc = [](const std::vector<int> &order) {
        TestBuilder b;
        std::vector<int> t = {b.newThread(), b.newThread(), b.newThread()};
        int w_x = b.write(t[order[0]], "x");
        int r_x = b.read(t[order[1]], "x");
        int w_y = b.write(t[order[1]], "y");
        int r_y = b.read(t[order[2]], "y");
        int r_x2 = b.read(t[order[2]], "x");
        b.dataDepend(r_x, w_y);
        b.addrDepend(r_y, r_x2);
        b.readsFrom(w_x, r_x);
        b.readsFrom(w_y, r_y);
        b.readsInitial(r_x2);
        return b.build("WRC");
    };
    std::vector<int> order = {0, 1, 2};
    uint64_t want = canonicalHash(wrc(order), CanonMode::Exact);
    int permutations = 0;
    do {
        EXPECT_EQ(canonicalHash(wrc(order), CanonMode::Exact), want);
        permutations++;
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_EQ(permutations, 6);
}

} // namespace
} // namespace lts::litmus
