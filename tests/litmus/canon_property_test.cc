/**
 * @file
 * Property tests for the canonicalizer: on randomly generated litmus
 * tests, every thread permutation of a test must map to the same exact
 * canonical form, canonical forms must be valid and idempotent, and the
 * paper-mode canonicalizer must never merge two tests the exact one
 * keeps apart (it may only fail to merge).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "litmus/canon.hh"
#include "litmus/format.hh"
#include "litmus/print.hh"

namespace lts::litmus
{
namespace
{

/** Generate a random (structurally valid) litmus test. */
LitmusTest
randomTest(std::mt19937 &rng, bool scoped)
{
    int threads = 1 + static_cast<int>(rng() % 3);
    int size = threads + static_cast<int>(rng() % 4);
    std::vector<int> tids;
    for (int t = 0; t < threads; t++)
        tids.push_back(t); // each thread gets at least one event
    while (static_cast<int>(tids.size()) < size)
        tids.push_back(static_cast<int>(rng() % threads));
    std::sort(tids.begin(), tids.end());

    const char *locs[] = {"x", "y", "z"};
    TestBuilder c;
    for (int t = 0; t < threads; t++)
        c.newThread();
    for (int tid : tids) {
        int kind = static_cast<int>(rng() % 6);
        if (kind == 0) {
            c.fence(tid, rng() % 2 ? MemOrder::SeqCst : MemOrder::AcqRel);
        } else if (kind <= 2) {
            MemOrder order =
                rng() % 3 == 0 ? MemOrder::Acquire : MemOrder::Plain;
            c.read(tid, locs[rng() % 3], order);
        } else {
            MemOrder order =
                rng() % 3 == 0 ? MemOrder::Release : MemOrder::Plain;
            c.write(tid, locs[rng() % 3], order);
        }
    }
    if (scoped) {
        for (int t = 0; t < threads; t++)
            c.setWorkgroup(t, static_cast<int>(rng() % 2));
    }
    return c.build("random");
}

class CanonPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CanonPropertyTest, PermutationInvarianceAndIdempotence)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 60; trial++) {
        LitmusTest t = randomTest(rng, trial % 3 == 0);
        ASSERT_EQ(t.validate(), "");

        LitmusTest canon = canonicalize(t, CanonMode::Exact);
        ASSERT_EQ(canon.validate(), "");
        std::string key = staticSerialize(canon);

        // Idempotence.
        EXPECT_EQ(staticSerialize(canonicalize(canon, CanonMode::Exact)),
                  key);

        // Invariance under every thread permutation.
        std::vector<int> order(t.numThreads);
        std::iota(order.begin(), order.end(), 0);
        do {
            LitmusTest permuted = permuteThreads(t, order);
            ASSERT_EQ(permuted.validate(), "");
            EXPECT_EQ(staticSerialize(
                          canonicalize(permuted, CanonMode::Exact)),
                      key)
                << toString(t) << "\npermuted:\n" << toString(permuted);
        } while (std::next_permutation(order.begin(), order.end()));

        // Paper mode never merges what exact mode distinguishes: two
        // random tests with different exact forms must have different
        // paper forms... only when their paper canonical forms are
        // themselves valid representatives of their exact classes.
        LitmusTest u = randomTest(rng, trial % 3 == 0);
        std::string exact_t = staticSerialize(canonicalize(t, CanonMode::Exact));
        std::string exact_u = staticSerialize(canonicalize(u, CanonMode::Exact));
        if (exact_t != exact_u) {
            EXPECT_NE(staticSerialize(canonicalize(t, CanonMode::Paper)),
                      staticSerialize(canonicalize(u, CanonMode::Paper)))
                << toString(t) << "\nvs\n" << toString(u);
        }

        // Paper-mode canonicalization stays within the symmetry class:
        // its output has the same exact form as its input.
        EXPECT_EQ(staticSerialize(canonicalize(
                      canonicalize(t, CanonMode::Paper), CanonMode::Exact)),
                  key);
    }
}

TEST_P(CanonPropertyTest, FormatRoundTripPreservesCanonicalForm)
{
    std::mt19937 rng(GetParam() + 1000);
    for (int trial = 0; trial < 40; trial++) {
        LitmusTest t = randomTest(rng, trial % 2 == 0);
        LitmusTest back = parseLitmus(writeLitmus(t));
        EXPECT_EQ(staticSerialize(back), staticSerialize(t));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonPropertyTest,
                         ::testing::Values(7, 17, 27, 37));

} // namespace
} // namespace lts::litmus
