/**
 * @file
 * Unit tests for the litmus-test IR: builder, validation, outcome value
 * semantics, and printing.
 */

#include <gtest/gtest.h>

#include "litmus/print.hh"
#include "litmus/test.hh"

namespace lts::litmus
{
namespace
{

/** The MP test of Figure 1 with forbidden outcome (r0=1, r1=0). */
LitmusTest
buildMp()
{
    TestBuilder b;
    int t0 = b.newThread();
    int w_data = b.write(t0, "x");
    int w_flag = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int r_flag = b.read(t1, "y", MemOrder::Acquire);
    int r_data = b.read(t1, "x");
    b.readsFrom(w_flag, r_flag);
    b.readsInitial(r_data);
    (void)w_data;
    return b.build("MP");
}

TEST(TestBuilderTest, MpShape)
{
    LitmusTest mp = buildMp();
    EXPECT_EQ(mp.size(), 4u);
    EXPECT_EQ(mp.numThreads, 2);
    EXPECT_EQ(mp.numLocs, 2);
    EXPECT_TRUE(mp.hasForbidden);
    EXPECT_EQ(mp.validate(), "");

    EXPECT_TRUE(mp.events[0].isWrite());
    EXPECT_EQ(mp.events[1].order, MemOrder::Release);
    EXPECT_EQ(mp.events[2].order, MemOrder::Acquire);
    EXPECT_TRUE(mp.events[3].isRead());
    EXPECT_EQ(mp.events[2].tid, 1);
}

TEST(TestBuilderTest, ThreadEventsAndPo)
{
    LitmusTest mp = buildMp();
    auto t0 = mp.threadEvents(0);
    ASSERT_EQ(t0.size(), 2u);
    EXPECT_EQ(t0[0], 0);
    EXPECT_EQ(t0[1], 1);

    BitMatrix po = mp.poMatrix();
    EXPECT_TRUE(po.test(0, 1));
    EXPECT_TRUE(po.test(2, 3));
    EXPECT_FALSE(po.test(1, 0));
    EXPECT_FALSE(po.test(1, 2));
    EXPECT_EQ(po.count(), 2u);
}

TEST(TestBuilderTest, SameLocMatrix)
{
    LitmusTest mp = buildMp();
    BitMatrix sl = mp.sameLocMatrix();
    EXPECT_TRUE(sl.test(0, 3)); // both on x
    EXPECT_TRUE(sl.test(1, 2)); // both on y
    EXPECT_FALSE(sl.test(0, 1));
    EXPECT_TRUE(sl.test(0, 0)); // reflexive on memory events
}

TEST(TestBuilderTest, OutcomeValues)
{
    LitmusTest mp = buildMp();
    auto regs = mp.registerValues(mp.forbidden);
    // Event 2 = Ld y (reads the store, value 1); event 3 = Ld x (initial).
    EXPECT_EQ(regs[2], 1);
    EXPECT_EQ(regs[3], 0);
    auto finals = mp.finalValues(mp.forbidden);
    EXPECT_EQ(finals[0], 1);
    EXPECT_EQ(finals[1], 1);
}

TEST(TestBuilderTest, CoRWValueAssignment)
{
    // CoRW from Figure 7: Ld r0=[x]; St [x],1 || St [x],2
    // Forbidden: (r0=2, [x]=2): read observes thread-1's store, which is
    // co-after thread-0's store.
    TestBuilder b;
    int t0 = b.newThread();
    int ld = b.read(t0, "x");
    int st1 = b.write(t0, "x");
    int t1 = b.newThread();
    int st2 = b.write(t1, "x");
    b.readsFrom(st2, ld);
    b.coOrder(st1, st2);
    LitmusTest corw = b.build("CoRW");

    auto wv = corw.writeValues(corw.forbidden);
    EXPECT_EQ(wv[1], 1); // st1 first in co
    EXPECT_EQ(wv[2], 2); // st2 second
    auto regs = corw.registerValues(corw.forbidden);
    EXPECT_EQ(regs[0], 2);
    auto finals = corw.finalValues(corw.forbidden);
    EXPECT_EQ(finals[0], 2);
}

TEST(TestBuilderTest, CoCompletionRespectsDeclaredOrder)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w1 = b.write(t0, "x");
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    b.coOrder(w2, w1); // against event order
    LitmusTest t = b.build("coherence-pair");
    EXPECT_TRUE(t.forbidden.co.test(w2, w1));
    EXPECT_FALSE(t.forbidden.co.test(w1, w2));
}

TEST(TestBuilderTest, InterleavedThreadDeclarationRenumbers)
{
    // Events added out of thread order must still produce contiguous
    // blocks.
    TestBuilder b;
    int t0 = b.newThread();
    int t1 = b.newThread();
    b.write(t1, "x");
    b.write(t0, "y");
    b.read(t1, "y");
    LitmusTest t = b.build("interleaved");
    EXPECT_EQ(t.validate(), "");
    EXPECT_EQ(t.events[0].tid, 0);
    EXPECT_TRUE(t.events[0].isWrite());
    EXPECT_EQ(t.events[1].tid, 1);
    EXPECT_EQ(t.events[2].tid, 1);
    EXPECT_TRUE(t.events[2].isRead());
}

TEST(TestBuilderTest, RmwPairing)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    LitmusTest t = b.build("rmw");
    EXPECT_EQ(t.validate(), "");
    EXPECT_TRUE(t.rmw.test(0, 1));
}

TEST(TestBuilderTest, DependencyTracking)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "y");
    int r2 = b.read(t0, "z");
    b.dataDepend(r, w);
    b.ctrlDepend(r, r2);
    b.addrDepend(r, r2);
    LitmusTest t = b.build("deps");
    EXPECT_EQ(t.validate(), "");
    EXPECT_TRUE(t.dataDep.test(0, 1));
    EXPECT_TRUE(t.ctrlDep.test(0, 2));
    EXPECT_TRUE(t.addrDep.test(0, 2));
}

TEST(ValidationTest, RejectsBadRmw)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    b.write(t0, "z");
    int w2 = b.write(t0, "x");
    b.pairRmw(r, w2); // not adjacent
    EXPECT_THROW(b.build("bad"), std::logic_error);
}

TEST(ValidationTest, RejectsDependencyFromWrite)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w = b.write(t0, "x");
    int r = b.read(t0, "y");
    b.dataDepend(w, r);
    EXPECT_THROW(b.build("bad"), std::logic_error);
}

TEST(ValidationTest, RejectsCrossThreadDependency)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int t1 = b.newThread();
    int w = b.write(t1, "y");
    b.dataDepend(r, w);
    EXPECT_THROW(b.build("bad"), std::logic_error);
}

TEST(ValidationTest, RejectsRfLocationMismatch)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w = b.write(t0, "x");
    int t1 = b.newThread();
    int r = b.read(t1, "y");
    b.readsFrom(w, r);
    EXPECT_THROW(b.build("bad"), std::logic_error);
}

TEST(ValidationTest, RejectsCyclicCo)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w1 = b.write(t0, "x");
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    b.coOrder(w1, w2);
    b.coOrder(w2, w1);
    EXPECT_THROW(b.build("bad"), std::logic_error);
}

TEST(PrintTest, MpRendering)
{
    LitmusTest mp = buildMp();
    std::string s = toString(mp);
    EXPECT_NE(s.find("MP:"), std::string::npos);
    EXPECT_NE(s.find("Thread 0"), std::string::npos);
    EXPECT_NE(s.find("Thread 1"), std::string::npos);
    EXPECT_NE(s.find("St [x], 1"), std::string::npos);
    EXPECT_NE(s.find("St.rel [y], 1"), std::string::npos);
    EXPECT_NE(s.find("Ld.acq r0 = [y]"), std::string::npos);
    EXPECT_NE(s.find("Forbidden: (r0=1, r1=0)"), std::string::npos);
}

TEST(PrintTest, FinalValuesShownForMultiWriteLocations)
{
    TestBuilder b;
    int t0 = b.newThread();
    int ld = b.read(t0, "x");
    int st1 = b.write(t0, "x");
    int t1 = b.newThread();
    int st2 = b.write(t1, "x");
    b.readsFrom(st2, ld);
    b.coOrder(st1, st2);
    LitmusTest corw = b.build("CoRW");
    std::string s = outcomeToString(corw, corw.forbidden);
    EXPECT_EQ(s, "(r0=2, [x]=2)");
}

TEST(PrintTest, RmwAnnotation)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    std::string s = toString(b.build("rmw"));
    EXPECT_NE(s.find("Ld.rmw"), std::string::npos);
    EXPECT_NE(s.find("St.rmw"), std::string::npos);
}

TEST(EventTest, WeakeningLattice)
{
    using MO = MemOrder;
    EXPECT_TRUE(isWeaker(MO::Plain, MO::SeqCst));
    EXPECT_TRUE(isWeaker(MO::Plain, MO::Acquire));
    EXPECT_TRUE(isWeaker(MO::Acquire, MO::SeqCst));
    EXPECT_TRUE(isWeaker(MO::Acquire, MO::AcqRel));
    EXPECT_TRUE(isWeaker(MO::Release, MO::AcqRel));
    EXPECT_TRUE(isWeaker(MO::Consume, MO::Acquire));
    EXPECT_TRUE(isWeaker(MO::AcqRel, MO::SeqCst));
    EXPECT_FALSE(isWeaker(MO::Acquire, MO::Release));
    EXPECT_FALSE(isWeaker(MO::Release, MO::Acquire));
    EXPECT_FALSE(isWeaker(MO::Consume, MO::Release));
    EXPECT_FALSE(isWeaker(MO::SeqCst, MO::Plain));
    EXPECT_FALSE(isWeaker(MO::SeqCst, MO::SeqCst));
}

} // namespace
} // namespace lts::litmus
// Appended: printer summary and multi-location rendering coverage.
namespace lts::litmus
{
namespace
{

TEST(PrintTest, SummaryLine)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int t1 = b.newThread();
    b.read(t1, "x");
    b.read(t1, "y");
    EXPECT_EQ(summary(b.build("s")), "2 thr, 3 ev, 2 locs");
}

TEST(PrintTest, ManyLocationsUseFallbackNames)
{
    TestBuilder b;
    int t0 = b.newThread();
    for (int i = 0; i < 8; i++)
        b.write(t0, "loc" + std::to_string(i));
    std::string s = toString(b.build("many"));
    EXPECT_NE(s.find("[x]"), std::string::npos);
    EXPECT_NE(s.find("[m7]"), std::string::npos);
}

TEST(PrintTest, DependencyAnnotationsRendered)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "y");
    b.addrDepend(r, w);
    std::string s = toString(b.build("dep"));
    EXPECT_NE(s.find("[addr->1]"), std::string::npos);
}

TEST(EventTest, ToStringCoverage)
{
    EXPECT_EQ(toString(EventType::Read), "Ld");
    EXPECT_EQ(toString(EventType::Write), "St");
    EXPECT_EQ(toString(EventType::Fence), "Fence");
    EXPECT_EQ(toString(MemOrder::Plain), "");
    EXPECT_EQ(toString(MemOrder::Consume), "cns");
    EXPECT_EQ(toString(Scope::WorkGroup), "wg");
    EXPECT_EQ(toString(Scope::System), "sys");
    EXPECT_EQ(toString(Scope::WorkItem), "wi");
    EXPECT_EQ(toString(Scope::Device), "dev");
}

} // namespace
} // namespace lts::litmus
