/**
 * @file
 * Tests for the herd7 .litmus exporter/importer: dialect selection, the
 * co-position write-value convention, metadata round trips, tolerance
 * for herd-ecosystem syntax, and parser diagnostics.
 */

#include <gtest/gtest.h>

#include "litmus/canon.hh"
#include "litmus/format.hh"
#include "litmus/herd.hh"

namespace lts::litmus
{
namespace
{

/** Classic SB with MFENCEs: x86-expressible under tso. */
LitmusTest
sbFences()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+mfences");
}

/** A dependency forces the generic C dialect even under tso. */
LitmusTest
lbDeps()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w0 = b.write(t0, "y");
    b.dataDepend(r0, w0);
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.addrDepend(r1, w1);
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build("LB+deps");
}

LitmusTest
rmwTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    b.readsInitial(r);
    b.coOrder(w2, w);
    return b.build("rmw+co");
}

TEST(HerdTest, DialectSelection)
{
    EXPECT_EQ(herdDialectFor(sbFences(), "tso"), HerdDialect::X86);
    // Same test under another model name: generic C.
    EXPECT_EQ(herdDialectFor(sbFences(), "power"), HerdDialect::C);
    // Dependencies are not expressible in the x86 column syntax.
    EXPECT_EQ(herdDialectFor(lbDeps(), "tso"), HerdDialect::C);
}

TEST(HerdTest, X86EmitsMnemonics)
{
    HerdOptions opt;
    opt.modelName = "tso";
    std::string s = writeHerd(sbFences(), opt);
    EXPECT_EQ(s.rfind("X86 ", 0), 0u);
    EXPECT_NE(s.find("MFENCE"), std::string::npos);
    EXPECT_NE(s.find("MOV [x],$1"), std::string::npos);
    EXPECT_NE(s.find("MOV EAX,[y]"), std::string::npos);
    EXPECT_NE(s.find("exists (0:EAX=0 /\\ 1:EAX=0)"), std::string::npos);
}

TEST(HerdTest, X86EmitsXchgForRmw)
{
    HerdOptions opt;
    opt.modelName = "tso";
    std::string s = writeHerd(rmwTest(), opt);
    EXPECT_NE(s.find("XCHG [x],EAX"), std::string::npos);
}

TEST(HerdTest, CDialectEmitsAtomics)
{
    std::string s = writeHerd(lbDeps());
    EXPECT_EQ(s.rfind("C ", 0), 0u);
    EXPECT_NE(s.find("atomic_load_explicit"), std::string::npos);
    EXPECT_NE(s.find("atomic_store_explicit"), std::string::npos);
    // The data dependency shows up as the value-identity idiom and the
    // address dependency as pointer arithmetic.
    EXPECT_NE(s.find("1 + (r0 ^ r0)"), std::string::npos);
    EXPECT_NE(s.find("x + (r1 ^ r1)"), std::string::npos);
}

TEST(HerdTest, RoundTripExact)
{
    for (const LitmusTest &t : {sbFences(), lbDeps(), rmwTest()}) {
        HerdOptions opt;
        opt.modelName = "tso";
        LitmusTest back = parseHerd(writeHerd(t, opt));
        EXPECT_EQ(fullSerialize(back), fullSerialize(t)) << t.name;
        EXPECT_EQ(fullSerialize(canonicalize(back, CanonMode::Exact)),
                  fullSerialize(canonicalize(t, CanonMode::Exact)))
            << t.name;
    }
}

TEST(HerdTest, WriteValuesAreCoPositions)
{
    LitmusTest t = rmwTest();
    auto values = herdWriteValues(t);
    // Event 1 is the RMW write, event 2 the remote store; co orders the
    // remote store first, so it gets value 1 and the RMW write value 2.
    EXPECT_EQ(values[2], 1);
    EXPECT_EQ(values[1], 2);
    EXPECT_EQ(values[0], -1); // the read carries no write value
}

TEST(HerdTest, ScopeAndWorkgroupMetadataRoundTrip)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    b.setScope(wf, Scope::WorkGroup);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    b.read(t1, "x");
    b.setWorkgroup(t0, 0);
    b.setWorkgroup(t1, 0);
    b.readsFrom(wf, rf);
    LitmusTest t = b.build("scoped-mp");

    std::string s = writeHerd(t);
    EXPECT_NE(s.find("LTS-Scopes=1:wg"), std::string::npos);
    EXPECT_NE(s.find("LTS-Wg=0 0"), std::string::npos);
    LitmusTest back = parseHerd(s);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));
    EXPECT_EQ(back.events[1].scope, Scope::WorkGroup);
}

TEST(HerdTest, SplitRmwOrderRoundTrip)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x", MemOrder::Plain);
    int w = b.write(t0, "x", MemOrder::Release);
    b.pairRmw(r, w);
    b.readsInitial(r);
    LitmusTest t = b.build("split-rmw");

    std::string s = writeHerd(t);
    // The exchange carries the joined order on the surface and the true
    // per-half orders in metadata.
    EXPECT_NE(s.find("LTS-RmwOrders=0:pln:rel"), std::string::npos);
    LitmusTest back = parseHerd(s);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));
    EXPECT_EQ(back.events[0].order, MemOrder::Plain);
    EXPECT_EQ(back.events[1].order, MemOrder::Release);
}

TEST(HerdTest, DepOntoRmwHalfUsesMetadataOnly)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    b.ctrlDepend(r, w); // targets the RMW's own write half
    b.readsInitial(r);
    LitmusTest t = b.build("dep-into-rmw");

    std::string s = writeHerd(t);
    EXPECT_NE(s.find("LTS-Deps=c:0>1"), std::string::npos);
    // No surface idiom: the exchange cannot reference the register it
    // itself defines.
    EXPECT_EQ(s.find("r0 ^ r0"), std::string::npos);
    EXPECT_EQ(s.find("if (r0"), std::string::npos);
    LitmusTest back = parseHerd(s);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));
}

TEST(HerdTest, NoForbiddenOutcomeRoundTripsDistinctly)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.read(t0, "x");
    LitmusTest t = b.build("no-outcome");
    ASSERT_FALSE(t.hasForbidden);

    std::string s = writeHerd(t);
    EXPECT_EQ(s.find("exists"), std::string::npos);
    LitmusTest back = parseHerd(s);
    EXPECT_FALSE(back.hasForbidden);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));

    // An explicitly-empty forbidden outcome is a different test and must
    // stay one: it emits a (vacuous) exists clause.
    TestBuilder b2;
    int u0 = b2.newThread();
    b2.write(u0, "x");
    b2.read(u0, "x");
    b2.markForbidden();
    LitmusTest t2 = b2.build("empty-outcome");
    ASSERT_TRUE(t2.hasForbidden);
    std::string s2 = writeHerd(t2);
    EXPECT_NE(s2.find("exists"), std::string::npos);
    LitmusTest back2 = parseHerd(s2);
    EXPECT_TRUE(back2.hasForbidden);
    EXPECT_NE(fullSerialize(t), fullSerialize(t2));
}

TEST(HerdTest, ToleratesHerdEcosystemSyntax)
{
    std::string text = R"(C tolerant
"the classic message-passing shape"
(* a block comment
   spanning lines *)
Generator=diy7
{ x=0; y=0; }

P0 (atomic_int* x, atomic_int* y) {
    *x = 1;
    atomic_store(y, 1);
}

P1 (atomic_int* x, atomic_int* y) {
    int r0 = atomic_load(y);
    int r1 = *x;
}

locations [x; y;]
exists (1:r0=1 /\ 1:r1=0)
)";
    LitmusTest t = parseHerd(text);
    EXPECT_EQ(t.name, "tolerant");
    EXPECT_EQ(t.events[0].order, MemOrder::Plain);   // *x = 1
    EXPECT_EQ(t.events[1].order, MemOrder::SeqCst);  // non-_explicit
    EXPECT_EQ(t.events[3].order, MemOrder::Plain);   // int r1 = *x
    EXPECT_TRUE(t.hasForbidden);
    EXPECT_TRUE(t.forbidden.rf.test(1, 2));
    EXPECT_EQ(t.validate(), "");
}

TEST(HerdTest, TildeExistsIsForbiddenToo)
{
    std::string text = "C neg\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                       "    int r0 = atomic_load_explicit(x, "
                       "memory_order_seq_cst);\n}\n\n~exists (0:r0=0)\n";
    LitmusTest t = parseHerd(text);
    EXPECT_TRUE(t.hasForbidden);
    EXPECT_TRUE(t.forbidden.rf.none()); // reads initial
}

TEST(HerdTest, SanitizeTestName)
{
    EXPECT_EQ(sanitizeTestName("tso/union#12"), "tso_union_12");
    EXPECT_EQ(sanitizeTestName("MP+rel+acq"), "MP_rel_acq");
    EXPECT_EQ(sanitizeTestName("a--b"), "a--b");
    EXPECT_EQ(sanitizeTestName("###"), "test");
    EXPECT_EQ(sanitizeTestName(""), "test");
}

/** Parse @p text, expecting failure; return the diagnostic. */
std::string
herdError(const std::string &text)
{
    try {
        parseHerd(text);
    } catch (const std::exception &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected parse failure for: " << text;
    return "";
}

TEST(HerdTest, DiagnosticsCarryLineAndTestName)
{
    // Unknown mnemonic in an x86 row, on line 4.
    std::string msg = herdError("X86 bad\n{ x=0; }\n P0 ;\n FOO [x] ;\n");
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bad'"), std::string::npos) << msg;

    // Condition naming an unknown register, on line 6.
    msg = herdError("C bad2\n{ x=0; }\n\nP0 (atomic_int* x) {\n}\n"
                    "exists (0:r9=1)\n");
    EXPECT_NE(msg.find("line 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bad2'"), std::string::npos) << msg;
}

TEST(HerdTest, RejectsMalformedInput)
{
    // forall conditions are outside the forbidden-outcome IR.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    int r0 = atomic_load(x);\n}\n"
                           "forall (0:r0=0)\n"),
                 std::runtime_error);
    // Disjunction cannot be represented.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    int r0 = atomic_load(x);\n}\n"
                           "exists (0:r0=0 \\/ 0:r0=1)\n"),
                 std::runtime_error);
    // Nonzero initial values are not representable.
    EXPECT_THROW(parseHerd("C a\n{ x=7; }\n\nP0 (atomic_int* x) {\n}\n"),
                 std::runtime_error);
    // Contradictory register constraints.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    int r0 = atomic_load(x);\n"
                           "    atomic_store(x, 1);\n}\n"
                           "exists (0:r0=1 /\\ 0:r0=0)\n"),
                 std::runtime_error);
    // A condition value no write produces.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    int r0 = atomic_load(x);\n"
                           "    atomic_store(x, 1);\n}\n"
                           "exists (0:r0=9)\n"),
                 std::runtime_error);
    // Duplicate register declaration.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    int r0 = atomic_load(x);\n"
                           "    int r0 = atomic_load(x);\n}\n"),
                 std::runtime_error);
    // LTS metadata is only defined for the C dialect.
    EXPECT_THROW(parseHerd("X86 a\nLTS-Wg=0\n{ x=0; }\n P0 ;\n"
                           " MOV [x],$1 ;\n"),
                 std::runtime_error);
    // Dangling MOV reg,$v with no XCHG consuming it.
    EXPECT_THROW(parseHerd("X86 a\n{ x=0; }\n P0           ;\n"
                           " MOV EAX,$1   ;\n"),
                 std::runtime_error);
    // Unsupported architecture header.
    EXPECT_THROW(parseHerd("PPC a\n{ x=0; }\n"), std::runtime_error);
}

TEST(HerdTest, DuplicateWriteValuesRejected)
{
    // Two same-location stores of the same value under a condition: co
    // cannot be reconstructed from values, so ingest must refuse.
    EXPECT_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                           "    atomic_store(x, 1);\n"
                           "    atomic_store(x, 1);\n}\n"
                           "exists (true)\n"),
                 std::runtime_error);
    // Without a condition there is nothing to reconstruct, so the same
    // program is acceptable (values are not part of the IR).
    EXPECT_NO_THROW(parseHerd("C a\n{ x=0; }\n\nP0 (atomic_int* x) {\n"
                              "    atomic_store(x, 1);\n"
                              "    atomic_store(x, 1);\n}\n"));
}

} // namespace
} // namespace lts::litmus
