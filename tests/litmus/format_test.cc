/**
 * @file
 * Tests for the litmus interchange format: write/parse round trips on
 * the named tests and the synthesized suites, plus parser diagnostics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "litmus/canon.hh"
#include "litmus/format.hh"

namespace lts::litmus
{
namespace
{

LitmusTest
mpRelAcq()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP+rel+acq");
}

LitmusTest
powerishTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    b.fence(t0, MemOrder::AcqRel);
    int w0 = b.write(t0, "y");
    b.dataDepend(r0, w0);
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.addrDepend(r1, w1);
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build("LB+deps+lwsync");
}

LitmusTest
rmwCoTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    b.readsInitial(r);
    b.coOrder(w2, w); // remote store first in coherence
    return b.build("rmw+co");
}

TEST(FormatTest, WriteContainsExpectedSyntax)
{
    std::string s = writeLitmus(mpRelAcq());
    EXPECT_NE(s.find("LTS MP+rel+acq"), std::string::npos);
    EXPECT_NE(s.find("thread 0: St [m0] ; St.rel [m1]"), std::string::npos);
    EXPECT_NE(s.find("Ld.acq r0 = [m1]"), std::string::npos);
    EXPECT_NE(s.find("forbidden: rf 1 -> 2 ; init 3"), std::string::npos);
    EXPECT_NE(s.find("end"), std::string::npos);
}

TEST(FormatTest, RoundTripPreservesStructureAndOutcome)
{
    for (const LitmusTest &t : {mpRelAcq(), powerishTest(), rmwCoTest()}) {
        LitmusTest back = parseLitmus(writeLitmus(t));
        EXPECT_EQ(back.name, t.name);
        EXPECT_EQ(fullSerialize(back), fullSerialize(t)) << t.name;
    }
}

TEST(FormatTest, SuiteRoundTrip)
{
    std::vector<LitmusTest> suite = {mpRelAcq(), rmwCoTest()};
    std::ostringstream out;
    writeLitmusSuite(out, suite);
    std::istringstream in(out.str());
    auto back = parseLitmusSuite(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(fullSerialize(back[0]), fullSerialize(suite[0]));
    EXPECT_EQ(fullSerialize(back[1]), fullSerialize(suite[1]));
}

TEST(FormatTest, ParsesHandWrittenText)
{
    std::string text = R"(
# the classic message-passing shape
LTS my-mp
thread 0: St [x] ; St.rel [flag]
thread 1: Ld.acq r0 = [flag] ; Ld r1 = [x]
forbidden: rf 1 -> 2 ; init 3
end
)";
    LitmusTest t = parseLitmus(text);
    EXPECT_EQ(t.name, "my-mp");
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.numThreads, 2);
    EXPECT_EQ(t.events[1].order, MemOrder::Release);
    EXPECT_EQ(t.events[2].order, MemOrder::Acquire);
    EXPECT_TRUE(t.hasForbidden);
    EXPECT_TRUE(t.forbidden.rf.test(1, 2));
    EXPECT_EQ(t.validate(), "");
}

TEST(FormatTest, ParserDiagnostics)
{
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: Hm [x]\nend\n"),
                 std::runtime_error);
    EXPECT_THROW(parseLitmus("LTS a\nthread 1: St [x]\nend\n"),
                 std::runtime_error); // threads must start at 0
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St [x]\n"),
                 std::runtime_error); // missing end
    EXPECT_THROW(parseLitmus("thread 0: St [x]\nend\n"),
                 std::runtime_error); // content before LTS
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: Ld [x]\nend\n"),
                 std::runtime_error); // load without '='
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St.zz [x]\nend\n"),
                 std::runtime_error); // bad annotation
    EXPECT_THROW(
        parseLitmus("LTS a\nthread 0: St [x]\nforbidden: zap 1\nend\n"),
        std::runtime_error); // unknown outcome directive
}

TEST(FormatTest, CoChainRoundTripsThroughImmediateEdges)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w0 = b.write(t0, "x");
    int t1 = b.newThread();
    int w1 = b.write(t1, "x");
    int t2 = b.newThread();
    int w2 = b.write(t2, "x");
    b.coOrder(w2, w1);
    b.coOrder(w1, w0); // co: w2 < w1 < w0
    LitmusTest t = b.build("co-chain");
    LitmusTest back = parseLitmus(writeLitmus(t));
    EXPECT_EQ(back.forbidden.co, t.forbidden.co);
    EXPECT_TRUE(back.forbidden.co.test(w2, w0)); // transitivity restored
}

} // namespace
} // namespace lts::litmus
// Appended: scoped-format tests live in their own namespace block so the
// file's earlier anonymous namespace stays untouched.
namespace lts::litmus
{
namespace
{

TEST(FormatTest, ScopedRoundTrip)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    b.setScope(wf, Scope::WorkGroup);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    b.setScope(rf, Scope::System);
    b.read(t1, "x");
    b.setWorkgroup(t0, 0);
    b.setWorkgroup(t1, 0);
    b.readsFrom(wf, rf);
    LitmusTest t = b.build("scoped-mp");

    std::string text = writeLitmus(t);
    EXPECT_NE(text.find("St.rel@wg [m1]"), std::string::npos);
    EXPECT_NE(text.find("wg: 0 0"), std::string::npos);

    LitmusTest back = parseLitmus(text);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));
    EXPECT_EQ(back.events[1].scope, Scope::WorkGroup);
    EXPECT_TRUE(back.hasWorkgroups());
}

TEST(FormatTest, BadScopeRejected)
{
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St.rel@zz [x]\nend\n"),
                 std::runtime_error);
}

} // namespace
} // namespace lts::litmus
