/**
 * @file
 * Tests for the litmus interchange format: write/parse round trips on
 * the named tests and the synthesized suites, plus parser diagnostics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "litmus/canon.hh"
#include "litmus/format.hh"

namespace lts::litmus
{
namespace
{

LitmusTest
mpRelAcq()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP+rel+acq");
}

LitmusTest
powerishTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    b.fence(t0, MemOrder::AcqRel);
    int w0 = b.write(t0, "y");
    b.dataDepend(r0, w0);
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.addrDepend(r1, w1);
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build("LB+deps+lwsync");
}

LitmusTest
rmwCoTest()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "x");
    b.pairRmw(r, w);
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    b.readsInitial(r);
    b.coOrder(w2, w); // remote store first in coherence
    return b.build("rmw+co");
}

TEST(FormatTest, WriteContainsExpectedSyntax)
{
    std::string s = writeLitmus(mpRelAcq());
    EXPECT_NE(s.find("LTS MP+rel+acq"), std::string::npos);
    EXPECT_NE(s.find("thread 0: St [m0] ; St.rel [m1]"), std::string::npos);
    EXPECT_NE(s.find("Ld.acq r0 = [m1]"), std::string::npos);
    EXPECT_NE(s.find("forbidden: rf 1 -> 2 ; init 3"), std::string::npos);
    EXPECT_NE(s.find("end"), std::string::npos);
}

TEST(FormatTest, RoundTripPreservesStructureAndOutcome)
{
    for (const LitmusTest &t : {mpRelAcq(), powerishTest(), rmwCoTest()}) {
        LitmusTest back = parseLitmus(writeLitmus(t));
        EXPECT_EQ(back.name, t.name);
        EXPECT_EQ(fullSerialize(back), fullSerialize(t)) << t.name;
    }
}

TEST(FormatTest, SuiteRoundTrip)
{
    std::vector<LitmusTest> suite = {mpRelAcq(), rmwCoTest()};
    std::ostringstream out;
    writeLitmusSuite(out, suite);
    std::istringstream in(out.str());
    auto back = parseLitmusSuite(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(fullSerialize(back[0]), fullSerialize(suite[0]));
    EXPECT_EQ(fullSerialize(back[1]), fullSerialize(suite[1]));
}

TEST(FormatTest, ParsesHandWrittenText)
{
    std::string text = R"(
# the classic message-passing shape
LTS my-mp
thread 0: St [x] ; St.rel [flag]
thread 1: Ld.acq r0 = [flag] ; Ld r1 = [x]
forbidden: rf 1 -> 2 ; init 3
end
)";
    LitmusTest t = parseLitmus(text);
    EXPECT_EQ(t.name, "my-mp");
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.numThreads, 2);
    EXPECT_EQ(t.events[1].order, MemOrder::Release);
    EXPECT_EQ(t.events[2].order, MemOrder::Acquire);
    EXPECT_TRUE(t.hasForbidden);
    EXPECT_TRUE(t.forbidden.rf.test(1, 2));
    EXPECT_EQ(t.validate(), "");
}

TEST(FormatTest, ParserDiagnostics)
{
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: Hm [x]\nend\n"),
                 std::runtime_error);
    EXPECT_THROW(parseLitmus("LTS a\nthread 1: St [x]\nend\n"),
                 std::runtime_error); // threads must start at 0
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St [x]\n"),
                 std::runtime_error); // missing end
    EXPECT_THROW(parseLitmus("thread 0: St [x]\nend\n"),
                 std::runtime_error); // content before LTS
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: Ld [x]\nend\n"),
                 std::runtime_error); // load without '='
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St.zz [x]\nend\n"),
                 std::runtime_error); // bad annotation
    EXPECT_THROW(
        parseLitmus("LTS a\nthread 0: St [x]\nforbidden: zap 1\nend\n"),
        std::runtime_error); // unknown outcome directive
}

TEST(FormatTest, CoChainRoundTripsThroughImmediateEdges)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w0 = b.write(t0, "x");
    int t1 = b.newThread();
    int w1 = b.write(t1, "x");
    int t2 = b.newThread();
    int w2 = b.write(t2, "x");
    b.coOrder(w2, w1);
    b.coOrder(w1, w0); // co: w2 < w1 < w0
    LitmusTest t = b.build("co-chain");
    LitmusTest back = parseLitmus(writeLitmus(t));
    EXPECT_EQ(back.forbidden.co, t.forbidden.co);
    EXPECT_TRUE(back.forbidden.co.test(w2, w0)); // transitivity restored
}

} // namespace
} // namespace lts::litmus
// Appended: scoped-format tests live in their own namespace block so the
// file's earlier anonymous namespace stays untouched.
namespace lts::litmus
{
namespace
{

TEST(FormatTest, ScopedRoundTrip)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", MemOrder::Release);
    b.setScope(wf, Scope::WorkGroup);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    b.setScope(rf, Scope::System);
    b.read(t1, "x");
    b.setWorkgroup(t0, 0);
    b.setWorkgroup(t1, 0);
    b.readsFrom(wf, rf);
    LitmusTest t = b.build("scoped-mp");

    std::string text = writeLitmus(t);
    EXPECT_NE(text.find("St.rel@wg [m1]"), std::string::npos);
    EXPECT_NE(text.find("wg: 0 0"), std::string::npos);

    LitmusTest back = parseLitmus(text);
    EXPECT_EQ(fullSerialize(back), fullSerialize(t));
    EXPECT_EQ(back.events[1].scope, Scope::WorkGroup);
    EXPECT_TRUE(back.hasWorkgroups());
}

TEST(FormatTest, BadScopeRejected)
{
    EXPECT_THROW(parseLitmus("LTS a\nthread 0: St.rel@zz [x]\nend\n"),
                 std::runtime_error);
}

} // namespace
} // namespace lts::litmus
// Appended: interchange-bugfix round coverage — line-numbered
// diagnostics for every parser error path, and the distinction between
// "no forbidden outcome" and an explicitly-empty one.
namespace lts::litmus
{
namespace
{

/** Parse @p text, expecting failure; return the diagnostic message. */
std::string
parseError(const std::string &text)
{
    try {
        parseLitmus(text);
    } catch (const std::exception &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected parse failure for: " << text;
    return "";
}

TEST(FormatTest, DiagnosticsNameLineAndTest)
{
    struct Case
    {
        const char *text;
        const char *line;  ///< expected "line N" fragment
        const char *why;   ///< expected reason fragment
    };
    const Case cases[] = {
        {"LTS a\nthread 0: Hm [x]\nend\n", "line 2", "unknown opcode"},
        {"LTS a\nthread 0: St.zz [x]\nend\n", "line 2", "bad annotation"},
        {"LTS a\nthread 0: St.rel@zz [x]\nend\n", "line 2", "bad scope"},
        {"LTS a\nthread 0: Ld [x]\nend\n", "line 2", "load without '='"},
        {"LTS a\nthread 0: St x\nend\n", "line 2", "missing [location]"},
        {"LTS a\nthread 0: St [x] ; ; St [x]\nend\n", "line 2",
         "empty instruction"},
        {"LTS a\nthread 1: St [x]\nend\n", "line 2",
         "threads must be declared densely"},
        {"LTS a\nthread 0 St [x]\nend\n", "line 2",
         "thread line without ':'"},
        {"LTS a\nthread 0: St [x]\nzap\nend\n", "line 3",
         "unrecognized line"},
        {"LTS a\nthread 0: St [x]\ndep addr 0 -> \nend\n", "line 3",
         "expected 'dep kind A -> B'"},
        {"LTS a\nthread 0: St [x]\ndep foo 0 -> 0\nend\n", "line 3",
         "unknown dependency kind"},
        {"LTS a\nthread 0: Ld r0 = [x] ; St [x]\nrmw 0\nend\n", "line 3",
         "expected 'rmw R W'"},
        {"LTS a\nthread 0: St [x]\nforbidden: zap 1\nend\n", "line 3",
         "unknown outcome directive"},
        {"LTS a\nthread 0: St [x]\nforbidden: co 9 < 0\nend\n", "line 1",
         "outside the test"},
        {"LTS a\nthread 0: St [x]\nforbidden: init q\nend\n", "line 3",
         "event id"},
        {"LTS a\nthread 0: St [x]\nwg: 0 1\nend\n", "line 3",
         "workgroup list names more threads"},
        {"LTS a\nthread 0: St [x]\nLTS b\nend\n", "line 3",
         "nested test"},
        {"thread 0: St [x]\nend\n", "line 1", "content outside a test"},
        {"LTS a\nthread 0: St [x]\n", "line 1", "missing 'end'"},
    };
    for (const auto &c : cases) {
        std::string msg = parseError(c.text);
        EXPECT_NE(msg.find(c.line), std::string::npos)
            << "in: " << c.text << "got: " << msg;
        EXPECT_NE(msg.find(c.why), std::string::npos)
            << "in: " << c.text << "got: " << msg;
        EXPECT_NE(msg.find("'a'") != std::string::npos ||
                      msg.find("test") != std::string::npos,
                  false)
            << "diagnostic should name the test: " << msg;
    }
}

TEST(FormatTest, EmptyForbiddenIsNotNoForbidden)
{
    // Same program text, differing only in the presence of an (empty)
    // forbidden: line. These are semantically different tests — one
    // forbids the all-initial execution, the other forbids nothing —
    // and must round-trip without collapsing into each other.
    std::string with_line = "LTS a\nthread 0: St [x]\nforbidden:\nend\n";
    std::string without = "LTS a\nthread 0: St [x]\nend\n";

    LitmusTest t1 = parseLitmus(with_line);
    LitmusTest t2 = parseLitmus(without);
    EXPECT_TRUE(t1.hasForbidden);
    EXPECT_FALSE(t2.hasForbidden);
    EXPECT_NE(fullSerialize(t1), fullSerialize(t2));

    LitmusTest r1 = parseLitmus(writeLitmus(t1));
    LitmusTest r2 = parseLitmus(writeLitmus(t2));
    EXPECT_TRUE(r1.hasForbidden);
    EXPECT_FALSE(r2.hasForbidden);
    EXPECT_EQ(fullSerialize(r1), fullSerialize(t1));
    EXPECT_EQ(fullSerialize(r2), fullSerialize(t2));
}

} // namespace
} // namespace lts::litmus
