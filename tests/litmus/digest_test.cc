/**
 * @file
 * Pins the versioned suite-digest format. The suite store, ltsd, the
 * benches, and CI all compare these strings across processes and
 * machines, so both the format tag and the digest of a fixed suite are
 * pinned as literals: if either assertion fails, the serialization
 * contract changed and kSuiteDigestFormat must be bumped (which retires
 * every stored record keyed under the old tag).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "litmus/digest.hh"
#include "litmus/test.hh"

using namespace lts;

namespace
{

/** Two fixed tests (message passing + store buffering), built rather
 *  than parsed so the pin does not also depend on the text parser. */
std::vector<litmus::LitmusTest>
fixedSuite()
{
    litmus::TestBuilder mp;
    int t0 = mp.newThread();
    mp.write(t0, "x");
    int wf = mp.write(t0, "y", litmus::MemOrder::Release);
    int t1 = mp.newThread();
    int rf = mp.read(t1, "y", litmus::MemOrder::Acquire);
    int rd = mp.read(t1, "x");
    mp.readsFrom(wf, rf);
    mp.readsInitial(rd);

    litmus::TestBuilder sb;
    int u0 = sb.newThread();
    sb.write(u0, "x");
    int ra = sb.read(u0, "y");
    int u1 = sb.newThread();
    sb.write(u1, "y");
    int rb = sb.read(u1, "x");
    sb.readsInitial(ra);
    sb.readsInitial(rb);

    return {mp.build("mp"), sb.build("sb")};
}

TEST(SuiteDigestTest, FormatTagIsPinned)
{
    // Changing this tag invalidates every store record and BENCH_*.json
    // comparison in the wild. Bump it deliberately, never drift it.
    EXPECT_STREQ(litmus::kSuiteDigestFormat, "lts-suite-v1");
}

TEST(SuiteDigestTest, RenderedFormIsTagColonHex16)
{
    std::string d = litmus::suiteDigest(fixedSuite());
    ASSERT_EQ(d.size(), std::string("lts-suite-v1:").size() + 16);
    EXPECT_EQ(d.rfind("lts-suite-v1:", 0), 0u);
    for (size_t i = d.size() - 16; i < d.size(); i++)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(d[i]))) << d;
}

TEST(SuiteDigestTest, FixedSuiteDigestIsPinned)
{
    // The literal pins hashInit/hashCombine and fullSerialize together:
    // any change to either shows up here before it corrupts a store.
    EXPECT_EQ(litmus::suiteDigest(fixedSuite()),
              "lts-suite-v1:379c3ee04d38cb0d");
}

TEST(SuiteDigestTest, DigestIsOrderAndContentSensitive)
{
    auto tests = fixedSuite();
    std::string whole = litmus::suiteDigest(tests);

    std::vector<litmus::LitmusTest> reversed(tests.rbegin(), tests.rend());
    EXPECT_NE(litmus::suiteDigest(reversed), whole);

    std::vector<litmus::LitmusTest> prefix(tests.begin(), tests.end() - 1);
    EXPECT_NE(litmus::suiteDigest(prefix), whole);

    EXPECT_NE(litmus::suiteDigest({}), whole);
}

TEST(SuiteDigestTest, NamesDoNotAffectTheDigest)
{
    // fullSerialize is structure-only; a renamed test is the same test.
    auto tests = fixedSuite();
    std::string before = litmus::suiteDigest(tests);
    for (auto &t : tests)
        t.name += "-renamed";
    EXPECT_EQ(litmus::suiteDigest(tests), before);
}

TEST(SuiteDigestTest, FormatValueRoundTrip)
{
    uint64_t value = litmus::suiteDigestValue(fixedSuite());
    EXPECT_EQ(litmus::formatSuiteDigest(value),
              litmus::suiteDigest(fixedSuite()));
}

} // namespace
