/**
 * @file
 * Frame protocol tests over a socketpair: round trips, interleaved
 * frame types, EOF handling, and truncated-frame rejection.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "store/wire.hh"

using namespace lts;

namespace
{

class WireTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }

    void
    TearDown() override
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }

    int a = -1, b = -1;
};

TEST_F(WireTest, RoundTripsPayloads)
{
    ASSERT_TRUE(store::writeFrame(a, store::FrameType::Request, "hello"));
    store::Frame frame;
    ASSERT_TRUE(store::readFrame(b, frame));
    EXPECT_EQ(frame.type, store::FrameType::Request);
    EXPECT_EQ(frame.payload, "hello");
}

TEST_F(WireTest, EmptyPayloadAndBinaryBytes)
{
    ASSERT_TRUE(store::writeFrame(a, store::FrameType::Ping, ""));
    std::string binary("\x00\x01\xff\n\x00", 5);
    ASSERT_TRUE(store::writeFrame(a, store::FrameType::Result, binary));

    store::Frame frame;
    ASSERT_TRUE(store::readFrame(b, frame));
    EXPECT_EQ(frame.type, store::FrameType::Ping);
    EXPECT_TRUE(frame.payload.empty());

    ASSERT_TRUE(store::readFrame(b, frame));
    EXPECT_EQ(frame.type, store::FrameType::Result);
    EXPECT_EQ(frame.payload, binary);
}

TEST_F(WireTest, SequenceOfFramesInOrder)
{
    for (int i = 0; i < 16; i++) {
        ASSERT_TRUE(store::writeFrame(a, store::FrameType::Progress,
                                      "line " + std::to_string(i)));
    }
    ASSERT_TRUE(store::writeFrame(a, store::FrameType::Result, "done"));
    store::Frame frame;
    for (int i = 0; i < 16; i++) {
        ASSERT_TRUE(store::readFrame(b, frame));
        EXPECT_EQ(frame.type, store::FrameType::Progress);
        EXPECT_EQ(frame.payload, "line " + std::to_string(i));
    }
    ASSERT_TRUE(store::readFrame(b, frame));
    EXPECT_EQ(frame.type, store::FrameType::Result);
}

TEST_F(WireTest, ReadFailsCleanlyOnEof)
{
    ::close(a);
    a = -1;
    store::Frame frame;
    EXPECT_FALSE(store::readFrame(b, frame));
}

TEST_F(WireTest, ReadFailsOnTruncatedFrame)
{
    // A header promising more payload than ever arrives: readFrame must
    // give up when the peer closes, not hang or fabricate bytes.
    uint32_t len = 1000;
    uint8_t type = 1;
    ASSERT_EQ(::write(a, &len, 4), 4);
    ASSERT_EQ(::write(a, &type, 1), 1);
    ASSERT_EQ(::write(a, "short", 5), 5);
    ::close(a);
    a = -1;
    store::Frame frame;
    EXPECT_FALSE(store::readFrame(b, frame));
}

} // namespace
