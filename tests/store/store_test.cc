/**
 * @file
 * SuiteStore durability tests: hit/miss/eviction through the LRU page
 * cache, reopen persistence, crash recovery from a torn tail record,
 * CRC rejection of corrupted records, and compaction.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "store/crc32.hh"
#include "store/store.hh"

using namespace lts;
namespace fs = std::filesystem;

namespace
{

/** Fresh per-test directory under the system temp dir, removed on exit. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = (fs::temp_directory_path() /
               ("lts-store-test-" + std::to_string(::getpid()) + "-" +
                info->name()))
                  .string();
        fs::remove_all(dir);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir);
    }

    std::string
    segmentPath() const
    {
        return dir + "/segment.log";
    }

    std::string dir;
};

TEST_F(StoreTest, PutGetContainsErase)
{
    store::SuiteStore s(dir);
    EXPECT_FALSE(s.contains("k"));
    EXPECT_FALSE(s.get("k").has_value());

    s.put("k", "value-1");
    EXPECT_TRUE(s.contains("k"));
    EXPECT_EQ(s.get("k").value(), "value-1");

    s.put("k", "value-2"); // supersede
    EXPECT_EQ(s.get("k").value(), "value-2");

    s.erase("k");
    EXPECT_FALSE(s.contains("k"));
    EXPECT_FALSE(s.get("k").has_value());
    s.erase("k"); // double-erase is a no-op
}

TEST_F(StoreTest, PersistsAcrossReopen)
{
    {
        store::SuiteStore s(dir);
        s.put("a", "alpha");
        s.put("b", "beta");
        s.put("a", "alpha-2");
        s.erase("b");
        s.flush();
    }
    store::SuiteStore s(dir);
    EXPECT_EQ(s.get("a").value(), "alpha-2");
    EXPECT_FALSE(s.contains("b"));
    EXPECT_EQ(s.stats().liveKeys, 1u);
}

TEST_F(StoreTest, IdenticalPutDoesNotGrowSegment)
{
    store::SuiteStore s(dir);
    s.put("k", "same-bytes");
    uint64_t size_before = s.stats().fileBytes;
    s.put("k", "same-bytes");
    EXPECT_EQ(s.stats().fileBytes, size_before);
}

TEST_F(StoreTest, LruEvictsUnderTinyBudget)
{
    // Budget fits roughly two of the ~1 KiB values; key "a" must fall
    // out once "b" and "c" are touched, but stays readable from disk.
    store::SuiteStore s(dir, 2300);
    std::string big(1000, 'x');
    s.put("a", big + "a");
    s.put("b", big + "b");
    s.put("c", big + "c");
    store::StoreStats stats = s.stats();
    EXPECT_GT(stats.cacheEvictions, 0u);
    EXPECT_LE(stats.cacheBytes, 2300u);

    uint64_t misses_before = s.stats().cacheMisses;
    EXPECT_EQ(s.get("a").value(), big + "a"); // re-read from disk
    EXPECT_GT(s.stats().cacheMisses, misses_before);

    uint64_t hits_before = s.stats().cacheHits;
    EXPECT_EQ(s.get("a").value(), big + "a"); // now resident again
    EXPECT_GT(s.stats().cacheHits, hits_before);
}

TEST_F(StoreTest, TornTailIsTruncatedOnReopen)
{
    uint64_t intact_size;
    {
        store::SuiteStore s(dir);
        s.put("keep", "kept-value");
        s.flush();
        intact_size = s.stats().fileBytes;
        s.put("torn", "this record will be cut mid-write");
        s.flush();
    }
    // Simulate a crash mid-append: cut the last record in half.
    uint64_t full_size = fs::file_size(segmentPath());
    ASSERT_GT(full_size, intact_size);
    fs::resize_file(segmentPath(), intact_size + (full_size - intact_size) / 2);

    // A read-only fsck must flag the torn bytes without repairing them.
    store::FsckReport before = store::fsckSegment(segmentPath());
    EXPECT_FALSE(before.clean());
    EXPECT_GT(before.tornBytes, 0u);
    EXPECT_EQ(before.liveKeys, 1u);

    // Reopen: the torn tail is dropped, intact records survive.
    store::SuiteStore s(dir);
    EXPECT_EQ(s.get("keep").value(), "kept-value");
    EXPECT_FALSE(s.contains("torn"));
    EXPECT_GT(s.stats().tornBytesDropped, 0u);

    // After the repair the segment scans clean again.
    store::FsckReport after = s.fsck();
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.liveKeys, 1u);

    // And the store keeps working past the truncation point.
    s.put("new", "post-crash write");
    s.flush();
    store::SuiteStore reopened(dir);
    EXPECT_EQ(reopened.get("keep").value(), "kept-value");
    EXPECT_EQ(reopened.get("new").value(), "post-crash write");
}

TEST_F(StoreTest, CorruptedRecordFailsFsck)
{
    {
        store::SuiteStore s(dir);
        s.put("k", "payload-payload-payload");
        s.flush();
    }
    // Flip one payload byte in place: length still parses, CRC must not.
    std::fstream f(segmentPath(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(20);
    f.put('X');
    f.close();

    store::FsckReport report = store::fsckSegment(segmentPath());
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.liveKeys, 0u);
}

TEST_F(StoreTest, CompactDropsSupersededRecords)
{
    store::SuiteStore s(dir);
    for (int i = 0; i < 10; i++)
        s.put("hot", "version-" + std::to_string(i));
    s.put("cold", "untouched");
    s.erase("cold");
    s.flush();
    uint64_t before = s.stats().fileBytes;
    ASSERT_GT(s.stats().deadBytes, 0u);

    uint64_t reclaimed = s.compact();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_LT(s.stats().fileBytes, before);
    EXPECT_EQ(s.stats().deadBytes, 0u);
    EXPECT_EQ(s.get("hot").value(), "version-9");
    EXPECT_FALSE(s.contains("cold"));

    // The compacted segment must survive a reopen and an fsck.
    store::SuiteStore reopened(dir);
    EXPECT_EQ(reopened.get("hot").value(), "version-9");
    EXPECT_TRUE(reopened.fsck().clean());
}

TEST_F(StoreTest, KeysListsLiveKeysOnly)
{
    store::SuiteStore s(dir);
    s.put("a", "1");
    s.put("b", "2");
    s.erase("a");
    auto keys = s.keys();
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], "b");
}

TEST(Crc32Test, MatchesKnownVector)
{
    // The canonical IEEE CRC-32 check value.
    EXPECT_EQ(store::crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(store::crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    uint32_t crc = store::crc32Init();
    crc = store::crc32Update(crc, "1234", 4);
    crc = store::crc32Update(crc, "56789", 5);
    EXPECT_EQ(store::crc32Final(crc), store::crc32("123456789"));
}

} // namespace
