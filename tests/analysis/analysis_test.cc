/**
 * @file
 * Unit tests for the model static analyzer (src/analysis): each detector
 * must fire on a deliberately broken model — arity mismatch in a
 * hand-built expression, a provably-empty join, a dead relation, a
 * redundant fact, an unsatisfiable axiom — and stay quiet on the shipped
 * models (which ltslint --all enforces end to end).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis.hh"
#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "rel/visit.hh"

namespace lts::analysis
{
namespace
{

using mm::kCo;
using mm::kPo;
using mm::kR;
using mm::kRf;
using mm::kW;
using rel::ExprPtr;

/** A minimal healthy model the broken variants start from. */
std::unique_ptr<mm::Model>
makeTinyModel()
{
    mm::ModelFeatures feats;
    feats.fences = false;
    feats.rmw = false;
    auto model = std::make_unique<mm::Model>("tiny", feats);
    model->addAxiom(mm::Axiom{
        "sequential_consistency",
        [](const mm::Model &, const mm::Env &env, size_t) {
            return rel::mkAcyclic(env.get(kPo) + mm::com(env));
        },
        nullptr,
    });
    model->addRelaxation(mm::makeRI());
    return model;
}

bool
hasFinding(const Report &report, const std::string &code,
           const std::string &where)
{
    for (const auto &f : report.findings()) {
        if (f.code == code && f.where == where)
            return true;
    }
    return false;
}

std::string
findingCodes(const Report &report)
{
    std::string out;
    for (const auto &f : report.findings())
        out += f.code + "(" + f.where + ") ";
    return out;
}

// --- bounding-type inference ------------------------------------------------

TEST(TypeInferenceTest, InfersCommunicationBounds)
{
    auto model = mm::makeModel("tso");
    TypeInference types(*model, 4);
    const mm::Env &env = model->base();

    // rf connects writes to reads; co connects writes to writes.
    EXPECT_EQ(types.describe(types.eval(env.get(kRf))), "{(W,R)}");
    EXPECT_EQ(types.describe(types.eval(env.get(kCo))), "{(W,W)}");
    // fr = rf~ . co* lands in (R,W).
    EXPECT_EQ(types.describe(types.eval(mm::fr(env))), "{(R,W)}");
    // rf.rf is provably empty: no event is both a read and a write.
    EXPECT_TRUE(types.eval(rel::mkJoin(env.get(kRf), env.get(kRf)))
                    .isEmpty());
    // po is unconstrained across classes.
    EXPECT_EQ(types.eval(env.get(kPo)).mask, types.top(2).mask);
}

TEST(AnalysisTest, FlagsEmptyJoinAndAlwaysFalseAxiom)
{
    auto model = makeTinyModel();
    model->addAxiom(mm::Axiom{
        "broken_chain",
        [](const mm::Model &, const mm::Env &env, size_t) {
            // rf.rf is empty in every instance; `some` can never hold.
            return rel::mkSome(rel::mkJoin(env.get(kRf), env.get(kRf)));
        },
        nullptr,
    });
    Report report;
    checkTypes(*model, 4, report);
    EXPECT_TRUE(hasFinding(report, "empty-join", "axiom:broken_chain"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "always-false", "axiom:broken_chain"))
        << findingCodes(report);
}

TEST(AnalysisTest, FlagsArityMismatchInHandBuiltExpr)
{
    auto model = makeTinyModel();
    model->addAxiom(mm::Axiom{
        "hand_built",
        [](const mm::Model &m, const mm::Env &, size_t) {
            // Bypass the checked factories: use R (declared arity 1) as
            // if it were a relation.
            auto node = std::make_shared<rel::Expr>();
            node->kind = rel::ExprKind::Var;
            node->arity = 2;
            node->varId = m.vocab().find(kR).id;
            node->name = kR;
            return rel::mkSome(rel::ExprPtr(node));
        },
        nullptr,
    });
    Report report;
    checkTypes(*model, 4, report);
    EXPECT_TRUE(hasFinding(report, "arity-mismatch", "axiom:hand_built"))
        << findingCodes(report);
    EXPECT_EQ(report.count(Severity::Error), 1u);
}

// --- dead definitions -------------------------------------------------------

TEST(AnalysisTest, FlagsDeadRelation)
{
    // rmw is declared (feature on) but no axiom, extra fact, or
    // relaxation ever reads it.
    mm::ModelFeatures feats;
    feats.fences = false;
    feats.rmw = true;
    mm::Model model("tiny-rmw", feats);
    model.addAxiom(mm::Axiom{
        "sequential_consistency",
        [](const mm::Model &, const mm::Env &env, size_t) {
            return rel::mkAcyclic(env.get(kPo) + mm::com(env));
        },
        nullptr,
    });
    Report report;
    checkDeadDefinitions(model, 4, report);
    EXPECT_TRUE(hasFinding(report, "dead-relation", "relation:rmw"))
        << findingCodes(report);
    // The communication and order relations are all reachable.
    EXPECT_FALSE(hasFinding(report, "dead-relation", "relation:rf"));
    EXPECT_FALSE(hasFinding(report, "dead-relation", "relation:po"));
}

TEST(AnalysisTest, FlagsDuplicateAxiomNames)
{
    auto model = makeTinyModel();
    model->addAxiom(mm::Axiom{
        "sequential_consistency",
        [](const mm::Model &, const mm::Env &env, size_t) {
            return rel::mkAcyclic(env.get(kPo));
        },
        nullptr,
    });
    Report report;
    checkDeadDefinitions(*model, 4, report);
    EXPECT_TRUE(hasFinding(report, "duplicate-axiom",
                           "axiom:sequential_consistency"))
        << findingCodes(report);
}

// --- solver vacuity probes --------------------------------------------------

TEST(AnalysisTest, FlagsRedundantAndTautologicalFacts)
{
    auto model = makeTinyModel();
    // Implied by rf.shape: rf already lands in W -> R.
    model->addExtraFact(
        "duplicate-rf-shape",
        [](const mm::Model &, const mm::Env &e, size_t) {
            return rel::mkSubset(e.get(kRf),
                                 rel::mkProduct(e.get(kW), e.get(kR)));
        });
    // True in every instance outright.
    model->addExtraFact("self-subset",
                        [](const mm::Model &, const mm::Env &e, size_t) {
                            return rel::mkSubset(e.get(kCo), e.get(kCo));
                        });
    ProbeOptions opt;
    opt.size = 3;
    Report report;
    checkVacuity(*model, opt, report);
    EXPECT_TRUE(
        hasFinding(report, "redundant-fact", "fact:duplicate-rf-shape"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "tautological-fact", "fact:self-subset"))
        << findingCodes(report);
}

TEST(AnalysisTest, FlagsUnsatisfiableAndTautologicalAxioms)
{
    auto model = makeTinyModel();
    model->addAxiom(mm::Axiom{
        "impossible",
        [](const mm::Model &, const mm::Env &, size_t) {
            return rel::mkFalse();
        },
        nullptr,
    });
    model->addAxiom(mm::Axiom{
        "trivial",
        [](const mm::Model &, const mm::Env &, size_t) {
            return rel::mkTrue();
        },
        nullptr,
    });
    ProbeOptions opt;
    opt.size = 3;
    opt.factProbes = false;
    Report report;
    checkVacuity(*model, opt, report);
    EXPECT_TRUE(hasFinding(report, "unsat-axiom", "axiom:impossible"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "tautological-axiom", "axiom:trivial"))
        << findingCodes(report);
    // The healthy axiom is both satisfiable and falsifiable.
    EXPECT_FALSE(
        hasFinding(report, "unsat-axiom", "axiom:sequential_consistency"));
    EXPECT_FALSE(hasFinding(report, "tautological-axiom",
                            "axiom:sequential_consistency"));
}

TEST(AnalysisTest, FlagsUnsatisfiableModel)
{
    auto model = makeTinyModel();
    model->addExtraFact("contradiction",
                        [](const mm::Model &, const mm::Env &e, size_t) {
                            return rel::mkSome(e.get(kR)) &&
                                   rel::mkNo(e.get(kR));
                        });
    ProbeOptions opt;
    opt.size = 3;
    Report report;
    checkVacuity(*model, opt, report);
    EXPECT_TRUE(hasFinding(report, "model-unsat", "well-formedness"))
        << findingCodes(report);
    EXPECT_EQ(report.count(Severity::Error), 1u);
}

// --- symmetry-spec validation -----------------------------------------------

TEST(SymmetryTest, RealSpecsValidateClean)
{
    for (const auto &name : mm::allModelNames()) {
        auto model = mm::makeModel(name);
        Report report;
        checkSymmetry(*model, 4, report);
        EXPECT_TRUE(report.findings().empty())
            << name << ": " << report.text();
    }
}

TEST(SymmetryTest, FlagsNonBijectivePermutation)
{
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec;
    spec.generators.push_back({{0, 0, 2, 3}, {}});
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "bad-perm", "generator:#0"))
        << findingCodes(report);
}

TEST(SymmetryTest, FlagsNonBlockSwapPermutation)
{
    // A 3-cycle is a bijection but not an involution of two blocks.
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec;
    spec.generators.push_back({{1, 2, 0, 3}, {}});
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "unequal-blocks", "generator:#0"))
        << findingCodes(report);
}

TEST(SymmetryTest, FlagsMissingBlockGuard)
{
    // A correct swap of events 0 and 1 with no po certificate at all:
    // both ranges are reported as uncertified.
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec;
    spec.generators.push_back({{1, 0, 2, 3}, {}});
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "missing-block-guard", "generator:#0"))
        << findingCodes(report);
    EXPECT_EQ(report.count(Severity::Error), 2u) << report.text();
}

TEST(SymmetryTest, FlagsStrippedBlockGuardCell)
{
    // Drop one po cell from a real generator guard: the certificate for
    // one of its ranges is now incomplete.
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec = model->symmetrySpec(4);
    ASSERT_FALSE(spec.generators.empty());
    const int po_id = model->vocab().find(mm::kPo).id;
    auto &conds = spec.generators[0].conditions;
    auto it = std::find_if(conds.begin(), conds.end(),
                           [&](const rel::CellCond &c) {
                               return c.varId == po_id;
                           });
    ASSERT_NE(it, conds.end());
    const rel::CellCond gone = *it;
    conds.erase(std::remove_if(conds.begin(), conds.end(),
                               [&](const rel::CellCond &c) {
                                   return c.varId == gone.varId &&
                                          c.i == gone.i && c.j == gone.j &&
                                          c.value == gone.value;
                               }),
                conds.end());
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "missing-block-guard", "generator:#0"))
        << findingCodes(report);
}

TEST(SymmetryTest, FlagsStrippedScopeGuardOnScopedModel)
{
    auto model = mm::makeModel("sscc");
    ASSERT_TRUE(model->features().scopes);
    rel::SymmetrySpec spec = model->symmetrySpec(4);
    ASSERT_FALSE(spec.generators.empty());
    ASSERT_FALSE(spec.forbidden.empty());
    const int swg_id = model->vocab().find(mm::kSameWg).id;
    auto strip = [&](std::vector<rel::CellCond> &conds) {
        conds.erase(std::remove_if(conds.begin(), conds.end(),
                                   [&](const rel::CellCond &c) {
                                       return c.varId == swg_id;
                                   }),
                    conds.end());
    };
    strip(spec.generators[0].conditions);
    strip(spec.forbidden[0]);
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "missing-scope-guard", "generator:#0"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "missing-scope-guard", "pattern:#0"))
        << findingCodes(report);
}

TEST(SymmetryTest, FlagsLexVectorProblems)
{
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec = model->symmetrySpec(4);
    spec.lexVarIds.push_back(model->vocab().find(kPo).id);
    spec.lexVarIds.push_back(model->vocab().find(kRf).id);
    spec.lexVarIds.push_back(9999);
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "lex-invariant-relation", "lex"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "lex-dynamic-relation", "lex"))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "lex-unknown-relation", "lex"))
        << findingCodes(report);
}

TEST(SymmetryTest, FlagsEmptyPatternAndBadGuardCell)
{
    auto model = mm::makeModel("tso");
    rel::SymmetrySpec spec = model->symmetrySpec(4);
    spec.forbidden.push_back({});
    size_t bad = spec.forbidden.size();
    spec.forbidden.push_back({{-5, 0, 1, true}});
    spec.forbidden.push_back(
        {{model->vocab().find(kPo).id, 0, 9, true}});
    Report report;
    checkSymmetrySpec(*model, spec, 4, report);
    EXPECT_TRUE(hasFinding(report, "empty-pattern",
                           "pattern:#" + std::to_string(bad - 1)))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "bad-guard-cell",
                           "pattern:#" + std::to_string(bad)))
        << findingCodes(report);
    EXPECT_TRUE(hasFinding(report, "bad-guard-cell",
                           "pattern:#" + std::to_string(bad + 1)))
        << findingCodes(report);
}

// --- report rendering and orchestration -------------------------------------

TEST(AnalysisTest, JsonReportCarriesFindingsAndCounts)
{
    auto model = makeTinyModel();
    model->addAxiom(mm::Axiom{
        "impossible",
        [](const mm::Model &, const mm::Env &, size_t) {
            return rel::mkFalse();
        },
        nullptr,
    });
    AnalysisOptions opt;
    opt.size = 3;
    Report report;
    analyzeModel(*model, opt, report);

    std::string json = report.json();
    EXPECT_NE(json.find("\"code\": \"unsat-axiom\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"where\": \"axiom:impossible\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"counts\": {\"error\": 1"), std::string::npos)
        << json;
    EXPECT_FALSE(report.clean(false));

    std::string text = report.text();
    EXPECT_NE(text.find("error: [vacuity/unsat-axiom] "
                        "tiny/axiom:impossible"),
              std::string::npos)
        << text;
}

TEST(AnalysisTest, ShippedModelsAnalyzeCleanUnderWerror)
{
    for (const auto &name : mm::allModelNames()) {
        auto model = mm::makeModel(name);
        AnalysisOptions opt;
        opt.size = 4;
        Report report;
        analyzeModel(*model, opt, report);
        EXPECT_TRUE(report.clean(/*werror=*/true))
            << name << ": " << report.text();
    }
}

} // namespace
} // namespace lts::analysis
